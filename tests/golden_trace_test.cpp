// Golden-trace regression: a small fixed-seed 16-node scenario sweep must
// reproduce the committed per-round detection CSV byte for byte. This pins
// the entire stack — RNG draw order, event ordering, Medium delivery order
// (including the batched HELLO fast path), trust arithmetic and CSV
// formatting — so any fast-path PR that silently changes a trace fails
// here even if every unit invariant still holds.
//
// If a change is *supposed* to alter traces (a semantic change, not an
// optimization), regenerate the fixture with
// tests/fixtures/README.md's command and justify the diff in the PR.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"

namespace {

using namespace manet;

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The exact spec the fixture was recorded with. Keep in sync with
/// tests/fixtures/README.md.
runtime::ExperimentSpec golden_spec() {
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(2024, 4);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.0, 0.29};
  spec.mobility_presets = {runtime::MobilityPreset::kStatic,
                           runtime::MobilityPreset::kLowChurn};
  spec.rounds = 6;
  return spec;
}

std::string golden_fixture_path() {
  return std::string{MANET_FIXTURE_DIR} + "/golden_per_round_16node.csv";
}

TEST(GoldenTrace, PerRoundDetectionCsvMatchesFixture) {
  const auto expected = read_file(golden_fixture_path());
  ASSERT_FALSE(expected.empty());

  runtime::Runner::Config rc;
  rc.threads = 1;
  runtime::Runner runner{rc};
  const auto results = runner.run(golden_spec());

  const runtime::Aggregator aggregator{0.95};
  const auto actual =
      runtime::Aggregator::per_round_csv(aggregator.per_round(results));

  EXPECT_EQ(actual, expected)
      << "per-round detection trace diverged from the committed fixture; "
         "if this change is intentionally trace-altering, regenerate per "
         "tests/fixtures/README.md";
}

// The same replications sharded across 4 workers must aggregate to the
// same bytes — the Runner's determinism contract, pinned against the
// fixture rather than against a sibling run.
TEST(GoldenTrace, ThreadCountDoesNotChangeTheTrace) {
  const auto expected = read_file(golden_fixture_path());

  runtime::Runner::Config rc;
  rc.threads = 4;
  runtime::Runner runner{rc};
  const auto results = runner.run(golden_spec());

  const runtime::Aggregator aggregator{0.95};
  const auto actual =
      runtime::Aggregator::per_round_csv(aggregator.per_round(results));

  EXPECT_EQ(actual, expected);
}

}  // namespace
