// Forwarding-audit (grayhole) behavioural-equivalence suite.
//
// Three equivalence axes, each over the §V-style grayhole experiment
// (multi-hop grid, node 1 a WILL_ALWAYS MPR dropping the floods it
// attracted):
//   - live vs replayed audit log (the manet_detect contract), 50 seeds;
//   - worker-thread counts, on both the Runner axis and the psim sharded
//     engine axis;
//   - pristine run vs checkpoint/restore continuation.
// Plus the detection-quality matrix over drop-fraction x liar-fraction,
// byte-compared against a committed precision/recall fixture, and unit
// tests of the ForwardingAuditor tally mechanics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/audit_event.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/signatures_forwarding.hpp"
#include "logging/format.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"
#include "scenario/trust_experiment.hpp"

namespace manet {
namespace {

using net::NodeId;
using scenario::TrustExperiment;

// --- ForwardingAuditor unit tests -----------------------------------------

logging::LogRecord record_at(double seconds, const std::string& event) {
  logging::LogRecord r;
  r.time = sim::Time::from_seconds(seconds);
  r.node = NodeId{0};
  r.event = event;
  return r;
}

/// A neighborhood where n1 advertises WILL_ALWAYS and is our MPR, so it is
/// audited on third-party floods.
std::vector<logging::LogRecord> audited_mpr_prelude() {
  std::vector<logging::LogRecord> records;
  auto hello = record_at(1.0, "hello_recv");
  hello.with("from", NodeId{1}).with("seq", std::int64_t{1})
      .with("will", std::int64_t{7});
  records.push_back(hello);
  auto mpr = record_at(1.1, "mpr_changed");
  mpr.with("mprs", logging::join_node_list({NodeId{1}}));
  records.push_back(mpr);
  return records;
}

void add_flood(std::vector<logging::LogRecord>& records, double seconds,
               NodeId orig, std::int64_t seq) {
  auto tc = record_at(seconds, "tc_recv");
  tc.with("orig", orig).with("via", orig).with("seq", seq);
  records.push_back(tc);
}

void add_echo(std::vector<logging::LogRecord>& records, double seconds,
              NodeId by, NodeId orig, std::int64_t seq) {
  auto echo = record_at(seconds, "fwd_echo");
  echo.with("by", by).with("orig", orig).with("seq", seq);
  records.push_back(echo);
}

TEST(ForwardingAuditor, SilentAlwaysMprFailsTheWindow) {
  core::ForwardingAuditor auditor{NodeId{0}};
  auto records = audited_mpr_prelude();
  for (std::int64_t seq = 1; seq <= 3; ++seq)
    add_flood(records, 2.0 + 0.1 * static_cast<double>(seq), NodeId{5}, seq);

  // n1 never re-forwards: after the flood timeout the window tallies
  // expected=3 forwarded=0 and synthesizes a fwd_audit_fail record.
  const auto tallies = auditor.sweep(sim::Time::from_seconds(10.0), records);
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0].mpr, NodeId{1});
  EXPECT_EQ(tallies[0].expected, 3u);
  EXPECT_EQ(tallies[0].forwarded, 0u);
  ASSERT_EQ(records.back().event, "fwd_audit_fail");
  EXPECT_EQ(records.back().node_field("mpr"), NodeId{1});
  EXPECT_EQ(records.back().int_field("expected"), 3);
  EXPECT_EQ(records.back().int_field("forwarded"), 0);
}

TEST(ForwardingAuditor, CreditedMprPassesTheWindow) {
  core::ForwardingAuditor auditor{NodeId{0}};
  auto records = audited_mpr_prelude();
  for (std::int64_t seq = 1; seq <= 4; ++seq) {
    const double at = 2.0 + 0.5 * static_cast<double>(seq);
    add_flood(records, at, NodeId{5}, seq);
    add_echo(records, at + 0.05, NodeId{1}, NodeId{5}, seq);
  }

  const auto before = records.size();
  const auto tallies = auditor.sweep(sim::Time::from_seconds(10.0), records);
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0].expected, 4u);
  EXPECT_EQ(tallies[0].forwarded, 4u);
  EXPECT_EQ(records.size(), before) << "no failure record for a forwarder";
}

TEST(ForwardingAuditor, MinExpectedGatesTheFailure) {
  // Two closed floods are below min_expected (3): tallied, never flagged —
  // transitional MPR-selector windows must not convict.
  core::ForwardingAuditor auditor{NodeId{0}};
  auto records = audited_mpr_prelude();
  add_flood(records, 2.0, NodeId{5}, 1);
  add_flood(records, 2.1, NodeId{5}, 2);

  const auto before = records.size();
  const auto tallies = auditor.sweep(sim::Time::from_seconds(10.0), records);
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0].expected, 2u);
  EXPECT_EQ(records.size(), before);
}

TEST(ForwardingAuditor, DefaultWillingnessMprIsNeverAudited) {
  // Same floods, but n1 advertises default willingness: the audited set is
  // empty, so no tally and no possible false conviction.
  core::ForwardingAuditor auditor{NodeId{0}};
  std::vector<logging::LogRecord> records;
  auto hello = record_at(1.0, "hello_recv");
  hello.with("from", NodeId{1}).with("seq", std::int64_t{1})
      .with("will", std::int64_t{3});
  records.push_back(hello);
  auto mpr = record_at(1.1, "mpr_changed");
  mpr.with("mprs", logging::join_node_list({NodeId{1}}));
  records.push_back(mpr);
  for (std::int64_t seq = 1; seq <= 5; ++seq)
    add_flood(records, 2.0 + 0.1 * static_cast<double>(seq), NodeId{5}, seq);

  const auto before = records.size();
  EXPECT_TRUE(auditor.sweep(sim::Time::from_seconds(10.0), records).empty());
  EXPECT_EQ(records.size(), before);
}

TEST(ForwardingAuditor, OriginatorIsExemptFromItsOwnFlood) {
  core::ForwardingAuditor auditor{NodeId{0}};
  auto records = audited_mpr_prelude();
  // n1 originates the flood itself: its own emission is not a forward, so
  // the audited set for this flood is empty.
  add_flood(records, 2.0, NodeId{1}, 1);
  EXPECT_TRUE(auditor.sweep(sim::Time::from_seconds(10.0), records).empty());
}

TEST(ForwardingAuditor, PersistRestoreCarriesPendingFloods) {
  // Persist mid-stream: floods 1/2 are already closed and flushed, flood 3
  // is still pending with one credit. The restored twin must tally flood 3
  // exactly as the original does.
  core::ForwardingAuditor auditor{NodeId{0}};
  auto records = audited_mpr_prelude();
  add_flood(records, 2.0, NodeId{5}, 1);
  add_flood(records, 2.1, NodeId{5}, 2);
  add_flood(records, 8.0, NodeId{5}, 3);
  add_echo(records, 8.1, NodeId{1}, NodeId{5}, 3);
  const auto first = auditor.sweep(sim::Time::from_seconds(9.0), records);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].expected, 2u);  // floods 1 and 2, never forwarded
  EXPECT_EQ(first[0].forwarded, 0u);

  core::ForwardingAuditor twin{NodeId{0}};
  twin.restore(auditor.persist());

  std::vector<logging::LogRecord> none, none2;
  const auto a = auditor.sweep(sim::Time::from_seconds(20.0), none);
  const auto b = twin.sweep(sim::Time::from_seconds(20.0), none2);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].expected, 1u);  // flood 3, credited via the echo
  EXPECT_EQ(a[0].forwarded, 1u);
  EXPECT_EQ(b[0].expected, a[0].expected);
  EXPECT_EQ(b[0].forwarded, a[0].forwarded);
  EXPECT_EQ(none.size(), none2.size());
}

// --- grayhole behavioural equivalence -------------------------------------

TrustExperiment::Config grayhole_config(std::uint64_t seed, int rounds,
                                        double drop_fraction = 1.0,
                                        std::size_t liars = 0) {
  TrustExperiment::Config config;
  config.attack = TrustExperiment::AttackKind::kGrayhole;
  config.drop_fraction = drop_fraction;
  config.seed = seed;
  config.num_nodes = 16;
  config.num_liars = liars;
  config.rounds = rounds;
  return config;
}

struct Csvs {
  std::string verdicts;
  std::string trust;
};

Csvs csvs_of(TrustExperiment& exp) {
  return {core::verdict_csv(exp.detector().reports()),
          core::trust_csv(exp.detector().trust_store())};
}

TEST(GrayholeEquivalence, FiftySeedsReplayByteIdentically) {
  // The manet_detect contract on the grayhole workload: the recorded audit
  // stream (now carrying kForwardAudit frames) fed into a fresh pipeline
  // reproduces the live verdict and trust CSVs byte for byte.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto config = grayhole_config(seed, /*rounds=*/3);
    config.record_audit = true;
    TrustExperiment exp{config};
    exp.setup();
    for (int r = 0; r < config.rounds; ++r) exp.run_round();
    exp.cease_attack();
    exp.run_idle_round();
    const auto live = csvs_of(exp);
    const auto bytes = exp.audit_log();
    ASSERT_FALSE(bytes.empty()) << "seed " << seed;

    core::AuditStreamReader stream{bytes};
    auto pipeline = core::pipeline_from_header(stream.header());
    core::AuditEvent event;
    std::uint64_t audits = 0;
    while (stream.next(event)) {
      if (event.kind == logging::AuditFrame::kForwardAudit) ++audits;
      pipeline.consume(event);
    }
    EXPECT_GT(audits, 0u) << "seed " << seed;
    ASSERT_EQ(core::verdict_csv(pipeline.reports()), live.verdicts)
        << "seed " << seed;
    ASSERT_EQ(core::trust_csv(pipeline.trust_store()), live.trust)
        << "seed " << seed;
  }
}

TEST(GrayholeEquivalence, RunnerThreadCountsAggregateIdentically) {
  // 50 seeds through the Runner at 1 and 4 workers: the aggregate CSV (and
  // therefore every per-replication result slot) must be byte-identical.
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(42, 50);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.25};
  spec.rounds = 6;
  spec.attack = TrustExperiment::AttackKind::kGrayhole;

  std::string csvs[2];
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    runtime::Runner runner{runtime::Runner::Config{threads[i]}};
    const auto results = runner.run(spec);
    const runtime::Aggregator aggregator{0.95};
    csvs[i] = runtime::Aggregator::to_csv(aggregator.aggregate(results));
  }
  EXPECT_EQ(csvs[0], csvs[1]);
}

TEST(GrayholeEquivalence, ShardedEngineIsThreadAndShardInvariant) {
  // The psim contract extends to the grayhole workload: sharded runs are
  // byte-identical for any (engine_threads, shards) pair.
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    Csvs baseline;
    bool first = true;
    for (const auto& [threads, shards] :
         std::vector<std::pair<unsigned, unsigned>>{{1, 2}, {4, 2}, {4, 4}}) {
      auto config = grayhole_config(seed, /*rounds=*/4);
      config.engine = sim::EngineKind::kSharded;
      config.engine_threads = threads;
      config.shards = shards;
      TrustExperiment exp{config};
      exp.setup();
      for (int r = 0; r < config.rounds; ++r) exp.run_round();
      const auto run = csvs_of(exp);
      if (first) {
        baseline = run;
        first = false;
        EXPECT_FALSE(baseline.verdicts.empty());
      } else {
        ASSERT_EQ(run.verdicts, baseline.verdicts)
            << "seed " << seed << " threads " << threads << " shards "
            << shards;
        ASSERT_EQ(run.trust, baseline.trust)
            << "seed " << seed << " threads " << threads << " shards "
            << shards;
      }
    }
  }
}

/// Full-precision fingerprint of one grayhole round: every field that
/// reaches any CSV plus the grayhole telemetry, so "fingerprints equal" ==
/// "per-round output byte-identical" (mirrors checkpoint_test).
std::string round_fingerprint(const TrustExperiment::RoundSnapshot& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "r%d at=%lld d=%.17g m=%.17g v=%d inv=%zu aud=%zu drop=%llu "
                "fc=%llu",
                s.round, static_cast<long long>(s.at.us()), s.detect, s.margin,
                static_cast<int>(s.verdict), s.investigations, s.audits,
                static_cast<unsigned long long>(s.dropped_control),
                static_cast<unsigned long long>(s.false_convictions));
  std::string out = buf;
  for (const auto& [id, t] : s.trust) {
    std::snprintf(buf, sizeof buf, " %s=%.17g", id.to_string().c_str(), t);
    out += buf;
  }
  return out;
}

TEST(GrayholeEquivalence, CheckpointRestoreContinuesByteIdentically) {
  // Pristine 6-round run vs 3 rounds + checkpoint (format v2, carrying the
  // auditor's pending floods and the drop attack's RNG/duty state) +
  // restore + 3 rounds. The checkpoint surface deliberately skips the
  // historical report ring, so equivalence is pinned the way
  // checkpoint_test pins it: post-restore round fingerprints plus the
  // final trust CSV.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto config = grayhole_config(seed, /*rounds=*/6);
    config.checkpointable = true;

    TrustExperiment pristine{config};
    pristine.setup();
    std::vector<std::string> want;
    for (int r = 0; r < 6; ++r) {
      const auto snap = pristine.run_round();
      if (r >= 3) want.push_back(round_fingerprint(snap));
    }

    TrustExperiment saver{config};
    saver.setup();
    for (int r = 0; r < 3; ++r) saver.run_round();
    const auto bytes = saver.save_checkpoint();
    auto restored = TrustExperiment::restore_checkpoint(config, bytes);
    for (int r = 0; r < 3; ++r) {
      const auto got = round_fingerprint(restored->run_round());
      ASSERT_EQ(got, want[static_cast<std::size_t>(r)])
          << "seed " << seed << " post-restore round " << r;
    }
    ASSERT_EQ(core::trust_csv(restored->detector().trust_store()),
              core::trust_csv(pristine.detector().trust_store()))
        << "seed " << seed;
  }
}

TEST(GrayholeEquivalence, FullDropAttackerConvictedLiarsNotwithstanding) {
  // The soundness anchor as a direct assertion (the matrix fixture pins
  // the same property across the grid): a blackhole node is convicted and
  // nobody else ever is, even with a quarter of the bystanders lying.
  auto config = grayhole_config(7, /*rounds=*/12, 1.0, /*liars=*/4);
  TrustExperiment exp{config};
  exp.setup();
  bool convicted = false;
  std::uint64_t false_convictions = 0;
  for (int r = 0; r < config.rounds; ++r) {
    const auto snap = exp.run_round();
    if (snap.verdict == trust::Verdict::kIntruder) convicted = true;
    false_convictions = snap.false_convictions;
  }
  EXPECT_TRUE(convicted);
  EXPECT_EQ(false_convictions, 0u);
}

// --- detection-quality matrix (golden fixture) ----------------------------

std::string matrix_fixture_path() {
  return std::string{MANET_FIXTURE_DIR} + "/golden_grayhole_matrix.csv";
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GrayholeMatrix, PrecisionRecallMatchesFixture) {
  // drop-fraction x liar-fraction sweep, 8 seeds per cell. Hard floors
  // first (full-drop attackers always convicted, honest bystanders never),
  // then the byte-compare pins the exact precision/recall surface —
  // including the designed blind spot: drop 0.2 sits under fail_ratio 0.5,
  // so the audit never flags it.
  const double drop_fractions[] = {0.2, 0.5, 1.0};
  const double liar_fractions[] = {0.0, 0.25};
  const auto seeds = runtime::ExperimentSpec::seed_range(2024, 8);

  std::ostringstream csv;
  csv << "drop_fraction,liar_fraction,replications,convicted,"
         "false_convictions,precision,recall\n";
  char line[160];
  for (double drop : drop_fractions) {
    for (double liar : liar_fractions) {
      std::vector<runtime::ReplicationTask> tasks;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        runtime::ReplicationTask task;
        task.index = s;
        task.point = runtime::GridPoint{16, liar,
                                        runtime::MobilityPreset::kStatic};
        task.seed = seeds[s];
        task.rounds = 12;
        task.attack = TrustExperiment::AttackKind::kGrayhole;
        task.drop_fraction = drop;
        tasks.push_back(task);
      }
      runtime::Runner runner{runtime::Runner::Config{4}};
      const auto results = runner.run(tasks);

      std::uint64_t convicted = 0, false_convictions = 0;
      for (const auto& r : results) {
        if (r.conviction_round >= 0) ++convicted;
        false_convictions += r.false_convictions;
      }
      EXPECT_EQ(false_convictions, 0u)
          << "honest node convicted at drop " << drop << " liar " << liar;
      if (drop == 1.0) {
        EXPECT_EQ(convicted, seeds.size())
            << "full-drop attacker escaped at liar " << liar;
      }

      const auto tp = static_cast<double>(convicted);
      const auto fp = static_cast<double>(false_convictions);
      const double precision = tp + fp > 0.0 ? tp / (tp + fp) : 1.0;
      const double recall = tp / static_cast<double>(seeds.size());
      std::snprintf(line, sizeof line, "%.6f,%.6f,%zu,%llu,%llu,%.6f,%.6f\n",
                    drop, liar, seeds.size(),
                    static_cast<unsigned long long>(convicted),
                    static_cast<unsigned long long>(false_convictions),
                    precision, recall);
      csv << line;
    }
  }

  if (std::getenv("MANET_REGEN_FIXTURES") != nullptr) {
    std::ofstream out{matrix_fixture_path(), std::ios::binary};
    out << csv.str();
    ASSERT_TRUE(out.good()) << "cannot regenerate " << matrix_fixture_path();
    GTEST_SKIP() << "fixture regenerated, not compared";
  }
  EXPECT_EQ(csv.str(), read_file(matrix_fixture_path()))
      << "grayhole precision/recall surface diverged from the committed "
         "fixture; if intentional, regenerate per tests/fixtures/README.md";
}

}  // namespace
}  // namespace manet
