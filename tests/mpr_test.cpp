// Tests for the RFC 3626 §8.3.1 MPR selection heuristic, including
// randomized property sweeps over the coverage invariant — the invariant a
// link spoofing attack exploits from the victim's side.

#include <gtest/gtest.h>

#include <algorithm>

#include "olsr/mpr_selection.hpp"
#include "sim/rng.hpp"

namespace manet::olsr {
namespace {

NodeId n(std::uint32_t v) { return NodeId{v}; }

// Builders keeping the flat MprInputs slabs sorted the way the agent does.
void set_will(MprInputs& in, NodeId id, Willingness w) {
  auto it = std::lower_bound(
      in.neighbors.begin(), in.neighbors.end(), id,
      [](const auto& p, NodeId v) { return p.first < v; });
  if (it != in.neighbors.end() && it->first == id) {
    it->second = w;
  } else {
    in.neighbors.insert(it, {id, w});
  }
}

void add_reach(MprInputs& in, NodeId via, NodeId two_hop) {
  auto it = std::lower_bound(
      in.reach.begin(), in.reach.end(), via,
      [](const auto& p, NodeId v) { return p.first < v; });
  if (it == in.reach.end() || it->first != via)
    it = in.reach.insert(it, {via, {}});
  auto& ths = it->second;
  auto pos = std::lower_bound(ths.begin(), ths.end(), two_hop);
  if (pos == ths.end() || *pos != two_hop) ths.insert(pos, two_hop);
}

bool contains(const std::vector<NodeId>& sorted, NodeId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

TEST(MprSelection, EmptyInputsEmptyMprs) {
  EXPECT_TRUE(select_mprs(MprInputs{}).empty());
}

TEST(MprSelection, NoTwoHopsNoMprs) {
  MprInputs in;
  set_will(in, n(1), Willingness::kDefault);
  set_will(in, n(2), Willingness::kDefault);
  EXPECT_TRUE(select_mprs(in).empty());
}

TEST(MprSelection, WillAlwaysIsAlwaysSelected) {
  MprInputs in;
  set_will(in, n(1), Willingness::kAlways);
  set_will(in, n(2), Willingness::kDefault);
  add_reach(in, n(2), n(10));
  const auto mprs = select_mprs(in);
  EXPECT_TRUE(contains(mprs, n(1)));
  EXPECT_TRUE(contains(mprs, n(2)));
}

TEST(MprSelection, SoleProviderForced) {
  MprInputs in;
  set_will(in, n(1), Willingness::kDefault);
  set_will(in, n(2), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  add_reach(in, n(1), n(11));
  add_reach(in, n(2), n(11));
  add_reach(in, n(2), n(12));  // only n2 reaches n12
  const auto mprs = select_mprs(in);
  EXPECT_TRUE(contains(mprs, n(2)));
}

TEST(MprSelection, GreedyPrefersLargerCoverage) {
  MprInputs in;
  for (std::uint32_t i = 1; i <= 3; ++i)
    set_will(in, n(i), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  add_reach(in, n(1), n(11));
  add_reach(in, n(1), n(12));
  add_reach(in, n(2), n(10));
  add_reach(in, n(3), n(11));
  const auto mprs = select_mprs(in);
  EXPECT_EQ(mprs, (std::vector<NodeId>{n(1)}));
}

TEST(MprSelection, TieBrokenByWillingness) {
  MprInputs in;
  set_will(in, n(1), Willingness::kLow);
  set_will(in, n(2), Willingness::kHigh);
  add_reach(in, n(1), n(10));
  add_reach(in, n(2), n(10));
  const auto mprs = select_mprs(in);
  EXPECT_EQ(mprs, (std::vector<NodeId>{n(2)}));
}

TEST(MprSelection, TieBrokenByIdForDeterminism) {
  MprInputs in;
  set_will(in, n(5), Willingness::kDefault);
  set_will(in, n(2), Willingness::kDefault);
  add_reach(in, n(5), n(10));
  add_reach(in, n(2), n(10));
  EXPECT_EQ(select_mprs(in), (std::vector<NodeId>{n(2)}));
}

TEST(MprSelection, UnreachableTwoHopDoesNotLoopForever) {
  MprInputs in;
  set_will(in, n(1), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  // n11 appears via a neighbor with no entry in `neighbors` — a degenerate
  // input; the loop must terminate with partial coverage.
  add_reach(in, n(99), n(11));
  const auto mprs = select_mprs(in);
  EXPECT_TRUE(contains(mprs, n(1)));
}

TEST(MprSelection, PruneRemovesRedundant) {
  MprInputs in;
  for (std::uint32_t i = 1; i <= 3; ++i)
    set_will(in, n(i), Willingness::kDefault);
  // n1 covers everything; n2/n3 cover subsets.
  add_reach(in, n(1), n(10));
  add_reach(in, n(1), n(11));
  add_reach(in, n(2), n(10));
  add_reach(in, n(3), n(11));
  auto pruned = select_mprs(in, /*prune_redundant=*/true);
  EXPECT_TRUE(covers_all_two_hops(in, pruned));
  EXPECT_EQ(pruned.size(), 1u);
}

TEST(MprSelection, CoversAllTwoHopsDetectsGaps) {
  MprInputs in;
  set_will(in, n(1), Willingness::kDefault);
  set_will(in, n(2), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  add_reach(in, n(2), n(11));
  EXPECT_FALSE(covers_all_two_hops(in, {n(1)}));
  EXPECT_TRUE(covers_all_two_hops(in, {n(1), n(2)}));
}

// The paper's Expression 1 exploit, from the selector's perspective: a
// neighbor advertising a phantom 2-hop node is guaranteed to be selected,
// because it is the phantom's sole provider.
TEST(MprSelection, PhantomNeighborForcesAttackerSelection) {
  MprInputs in;
  for (std::uint32_t i = 1; i <= 4; ++i)
    set_will(in, n(i), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  add_reach(in, n(1), n(11));
  add_reach(in, n(2), n(10));
  add_reach(in, n(2), n(11));
  // The attacker n4 has poor real coverage but invents phantom n99.
  add_reach(in, n(4), n(99));
  const auto mprs = select_mprs(in);
  EXPECT_TRUE(contains(mprs, n(4)));
}

// The scratch overload must agree with the plain one (the agent uses the
// former; tests mostly exercise the latter).
TEST(MprSelection, ScratchOverloadMatchesPlain) {
  MprInputs in;
  for (std::uint32_t i = 1; i <= 4; ++i)
    set_will(in, n(i), Willingness::kDefault);
  add_reach(in, n(1), n(10));
  add_reach(in, n(2), n(10));
  add_reach(in, n(2), n(11));
  add_reach(in, n(3), n(12));
  MprScratch scratch;
  std::vector<NodeId> out{n(77)};  // stale content must be cleared
  select_mprs(in, /*prune_redundant=*/false, scratch, out);
  EXPECT_EQ(out, select_mprs(in));
  select_mprs(in, /*prune_redundant=*/true, scratch, out);
  EXPECT_EQ(out, select_mprs(in, /*prune_redundant=*/true));
}

// Property sweep: for random neighborhoods, the selected MPR set always
// covers every strict 2-hop node, never includes WILL_NEVER-excluded
// entries (the caller drops them from reach), and pruning preserves
// coverage while never enlarging the set.
class MprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MprProperty, CoverageInvariants) {
  sim::Rng rng{GetParam()};
  MprInputs in;
  const int n1_count = static_cast<int>(rng.uniform_int(1, 12));
  const int n2_count = static_cast<int>(rng.uniform_int(1, 20));
  for (int i = 1; i <= n1_count; ++i) {
    const auto w = std::vector<Willingness>{
        Willingness::kLow, Willingness::kDefault, Willingness::kHigh,
        Willingness::kAlways}[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    set_will(in, n(static_cast<std::uint32_t>(i)), w);
  }
  for (int j = 0; j < n2_count; ++j) {
    const auto two_hop = n(static_cast<std::uint32_t>(100 + j));
    const int providers = static_cast<int>(rng.uniform_int(1, n1_count));
    for (int k = 0; k < providers; ++k) {
      const auto via =
          n(static_cast<std::uint32_t>(rng.uniform_int(1, n1_count)));
      add_reach(in, via, two_hop);
    }
  }

  const auto mprs = select_mprs(in);
  EXPECT_TRUE(covers_all_two_hops(in, mprs));
  EXPECT_TRUE(std::is_sorted(mprs.begin(), mprs.end()));
  for (auto m : mprs) {
    const auto it = std::lower_bound(
        in.neighbors.begin(), in.neighbors.end(), m,
        [](const auto& p, NodeId v) { return p.first < v; });
    EXPECT_TRUE(it != in.neighbors.end() && it->first == m);
  }

  const auto pruned = select_mprs(in, /*prune_redundant=*/true);
  EXPECT_TRUE(covers_all_two_hops(in, pruned));
  EXPECT_LE(pruned.size(), mprs.size());
  // WILL_ALWAYS members survive pruning.
  for (const auto& [id, w] : in.neighbors) {
    if (w == Willingness::kAlways && contains(mprs, id)) {
      EXPECT_TRUE(contains(pruned, id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MprProperty,
                         ::testing::Range<std::uint64_t>(1, 40));

}  // namespace
}  // namespace manet::olsr
