// Unit tests for the wireless substrate: node ids, medium delivery/loss/
// collision semantics, mobility models, topology generators.

#include <gtest/gtest.h>

#include "net/medium.hpp"
#include "net/mobility.hpp"
#include "net/node_id.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace manet::net {
namespace {

TEST(NodeId, RoundTripString) {
  const NodeId n{42};
  EXPECT_EQ(n.to_string(), "n42");
  EXPECT_EQ(NodeId::parse("n42"), n);
  EXPECT_TRUE(n.valid());
  EXPECT_FALSE(NodeId{}.valid());
}

TEST(NodeId, ParseRejectsGarbage) {
  EXPECT_THROW(NodeId::parse(""), std::invalid_argument);
  EXPECT_THROW(NodeId::parse("x42"), std::invalid_argument);
  EXPECT_THROW(NodeId::parse("n"), std::invalid_argument);
  EXPECT_THROW(NodeId::parse("n42x"), std::invalid_argument);
  EXPECT_THROW(NodeId::parse("n-1"), std::invalid_argument);
}

TEST(Position, DistanceAndArithmetic) {
  const Position a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_EQ((b * 2.0).x, 6.0);
  EXPECT_EQ((b - a).y, 4.0);
}

class MediumTest : public ::testing::Test {
 protected:
  sim::Simulator sim{123};
  RadioConfig lossless() {
    RadioConfig c;
    c.range_m = 100.0;
    c.loss_probability = 0.0;
    return c;
  }
};

TEST_F(MediumTest, BroadcastReachesOnlyInRange) {
  Medium m{sim, lossless()};
  std::vector<NodeId> received;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {50, 0},
           [&](const Packet& p) { received.push_back(p.transmitter); });
  m.attach(NodeId{2}, {500, 0},
           [&](const Packet&) { FAIL() << "out of range"; });
  m.broadcast(NodeId{0}, Bytes{1, 2, 3});
  sim.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], NodeId{0});
}

TEST_F(MediumTest, UnicastReachesOnlyTarget) {
  Medium m{sim, lossless()};
  int n1 = 0, n2 = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {10, 0}, [&](const Packet&) { ++n1; });
  m.attach(NodeId{2}, {20, 0}, [&](const Packet&) { ++n2; });
  m.unicast(NodeId{0}, NodeId{2}, Bytes{9});
  sim.run_all();
  EXPECT_EQ(n1, 0);
  EXPECT_EQ(n2, 1);
}

TEST_F(MediumTest, UnicastOutOfRangeLost) {
  Medium m{sim, lossless()};
  int got = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {500, 0}, [&](const Packet&) { ++got; });
  m.unicast(NodeId{0}, NodeId{1}, Bytes{9});
  sim.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(MediumTest, DownHostNeitherSendsNorReceives) {
  Medium m{sim, lossless()};
  int got = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {10, 0}, [&](const Packet&) { ++got; });
  m.set_up(NodeId{1}, false);
  m.broadcast(NodeId{0}, Bytes{1});
  sim.run_all();
  EXPECT_EQ(got, 0);
  m.set_up(NodeId{1}, true);
  m.set_up(NodeId{0}, false);
  m.broadcast(NodeId{0}, Bytes{1});
  sim.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(MediumTest, LossProbabilityDropsAboutRightFraction) {
  auto c = lossless();
  c.loss_probability = 0.25;
  Medium m{sim, c};
  int got = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {10, 0}, [&](const Packet&) { ++got; });
  const int sent = 4000;
  for (int i = 0; i < sent; ++i) m.broadcast(NodeId{0}, Bytes{1});
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(got) / sent, 0.75, 0.03);
  EXPECT_EQ(m.stats().losses + m.stats().deliveries,
            static_cast<std::uint64_t>(sent));
}

TEST_F(MediumTest, DeliveryDelayWithinConfiguredBounds) {
  auto c = lossless();
  c.base_delay = sim::Duration::from_us(400);
  c.delay_jitter = sim::Duration::from_us(600);
  Medium m{sim, c};
  std::vector<std::int64_t> arrivals;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {10, 0},
           [&](const Packet&) { arrivals.push_back(sim.now().us()); });
  for (int i = 0; i < 200; ++i) m.broadcast(NodeId{0}, Bytes{1});
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 200u);
  for (auto t : arrivals) {
    EXPECT_GE(t, 400);
    EXPECT_LE(t, 1000);
  }
}

TEST_F(MediumTest, CollisionWindowCorruptsOverlappingFrames) {
  auto c = lossless();
  c.base_delay = sim::Duration::from_us(100);
  c.delay_jitter = sim::Duration{};
  c.collision_window = sim::Duration::from_us(50);
  Medium m{sim, c};
  int got = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {0, 50});
  m.attach(NodeId{2}, {0, 25}, [&](const Packet&) { ++got; });
  // Two simultaneous transmissions arrive within the window: both corrupt.
  m.broadcast(NodeId{0}, Bytes{1});
  m.broadcast(NodeId{1}, Bytes{2});
  sim.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(m.stats().collisions, 2u);
}

TEST_F(MediumTest, SpacedFramesDoNotCollide) {
  auto c = lossless();
  c.base_delay = sim::Duration::from_us(100);
  c.delay_jitter = sim::Duration{};
  c.collision_window = sim::Duration::from_us(50);
  Medium m{sim, c};
  int got = 0;
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {0, 25}, [&](const Packet&) { ++got; });
  m.broadcast(NodeId{0}, Bytes{1});
  sim.run_until(sim.now() + sim::Duration::from_ms(10));
  m.broadcast(NodeId{0}, Bytes{2});
  sim.run_all();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(m.stats().collisions, 0u);
}

TEST_F(MediumTest, AttachTwiceThrows) {
  Medium m{sim, lossless()};
  m.attach(NodeId{0}, {0, 0});
  EXPECT_THROW(m.attach(NodeId{0}, {1, 1}), std::logic_error);
}

TEST_F(MediumTest, UnknownHostThrows) {
  Medium m{sim, lossless()};
  EXPECT_THROW(m.position(NodeId{9}), std::out_of_range);
  EXPECT_THROW(m.set_position(NodeId{9}, {0, 0}), std::out_of_range);
}

TEST_F(MediumTest, NeighborsInRangeGroundTruth) {
  Medium m{sim, lossless()};
  m.attach(NodeId{0}, {0, 0});
  m.attach(NodeId{1}, {50, 0});
  m.attach(NodeId{2}, {90, 0});
  m.attach(NodeId{3}, {300, 0});
  const auto nbrs = m.neighbors_in_range(NodeId{0});
  EXPECT_EQ(nbrs, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
}

TEST(Mobility, StaticStaysPut) {
  sim::Rng rng{1};
  StaticMobility s{{5, 5}};
  EXPECT_EQ(s.step(sim::Duration::from_seconds(10), rng), (Position{5, 5}));
}

TEST(Mobility, RandomWaypointStaysInArea) {
  sim::Rng rng{77};
  RandomWaypoint::Config c;
  c.area_width = 100;
  c.area_height = 100;
  c.speed_min_mps = 5;
  c.speed_max_mps = 10;
  c.pause = sim::Duration::from_seconds(0.5);
  RandomWaypoint rw{{50, 50}, c};
  for (int i = 0; i < 1000; ++i) {
    const auto p = rw.step(sim::Duration::from_ms(250), rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(Mobility, RandomWaypointRespectsSpeedLimit) {
  sim::Rng rng{78};
  RandomWaypoint::Config c;
  c.area_width = 1000;
  c.area_height = 1000;
  c.speed_min_mps = 2;
  c.speed_max_mps = 4;
  c.pause = sim::Duration{};
  RandomWaypoint rw{{500, 500}, c};
  Position prev = rw.current();
  for (int i = 0; i < 500; ++i) {
    const auto p = rw.step(sim::Duration::from_ms(500), rng);
    EXPECT_LE(distance(prev, p), 4.0 * 0.5 + 1e-9);
    prev = p;
  }
}

TEST(Mobility, ManagerMovesMediumPositions) {
  sim::Simulator s{5};
  Medium m{s, RadioConfig{}};
  m.attach(NodeId{0}, {0, 0});
  MobilityManager mgr{s, m, sim::Duration::from_ms(100)};
  RandomWaypoint::Config c;
  c.speed_min_mps = 10;
  c.speed_max_mps = 10;
  c.pause = sim::Duration{};
  mgr.set_model(NodeId{0}, std::make_unique<RandomWaypoint>(Position{0, 0}, c));
  mgr.start();
  s.run_until(sim::Time::from_seconds(5.0));
  mgr.stop();
  EXPECT_GT(distance(m.position(NodeId{0}), Position{0, 0}), 1.0);
}

TEST(Topology, GridShapeAndSpacing) {
  const auto g = grid_layout(9, 100.0);
  ASSERT_EQ(g.size(), 9u);
  EXPECT_EQ(g[0], (Position{0, 0}));
  EXPECT_EQ(g[4], (Position{100, 100}));
  EXPECT_EQ(g[8], (Position{200, 200}));
}

TEST(Topology, ChainAndRing) {
  const auto c = chain_layout(4, 50.0);
  EXPECT_DOUBLE_EQ(distance(c[0], c[3]), 150.0);
  const auto r = ring_layout(6, 100.0);
  for (const auto& p : r) EXPECT_NEAR(p.norm(), 100.0, 1e-9);
}

TEST(Topology, RandomLayoutRespectsSeparation) {
  sim::Rng rng{3};
  const auto pts = random_layout(30, 500, 500, 20.0, rng);
  ASSERT_EQ(pts.size(), 30u);
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      EXPECT_GE(distance(pts[i], pts[j]), 20.0);
}

TEST(Topology, RandomLayoutImpossibleThrows) {
  sim::Rng rng{3};
  EXPECT_THROW(random_layout(100, 10, 10, 50.0, rng), std::runtime_error);
}

TEST(Topology, ConnectivityCheck) {
  const auto chain = chain_layout(5, 100.0);
  EXPECT_TRUE(is_connected(chain, 100.0));
  EXPECT_FALSE(is_connected(chain, 99.0));
  EXPECT_TRUE(is_connected({}, 1.0));
}

TEST(Topology, ConnectedRandomLayoutIsConnected) {
  sim::Rng rng{8};
  const auto pts = connected_random_layout(20, 400, 400, 10.0, 150.0, rng);
  EXPECT_TRUE(is_connected(pts, 150.0));
}

TEST(Topology, AdjacencySymmetric) {
  sim::Rng rng{9};
  const auto pts = random_layout(15, 300, 300, 5.0, rng);
  const auto adj = adjacency(pts, 120.0);
  for (std::size_t i = 0; i < adj.size(); ++i)
    for (auto j : adj[i])
      EXPECT_NE(std::find(adj[j].begin(), adj[j].end(), i), adj[j].end());
}

// Property sweep over grid sizes: a grid with spacing <= range is connected.
class GridConnectivity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridConnectivity, SpacingWithinRangeConnects) {
  const auto g = grid_layout(GetParam(), 100.0);
  EXPECT_TRUE(is_connected(g, 100.0));
  if (GetParam() > 1) {
    EXPECT_FALSE(is_connected(g, 50.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridConnectivity,
                         ::testing::Values(1, 2, 4, 9, 16, 25, 49));

}  // namespace
}  // namespace manet::net
