// Unit tests for the runtime layer: ExperimentSpec grid expansion, the
// work-stealing Runner (determinism for a fixed seed grid, identical
// aggregates for 1-thread vs N-thread runs) and the Aggregator's
// confidence-interval arithmetic against stats/confidence directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "runtime/aggregator.hpp"
#include "runtime/experiment_spec.hpp"
#include "runtime/runner.hpp"
#include "stats/confidence.hpp"

namespace manet::runtime {
namespace {

// Small but real: 8-node cluster, 3 rounds, enough to exercise the whole
// simulator stack per replication without slowing the suite down.
ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.seeds = ExperimentSpec::seed_range(7, 2);
  spec.node_counts = {8};
  spec.attacker_fractions = {0.0, 0.34};
  spec.mobility_presets = {MobilityPreset::kStatic};
  spec.rounds = 3;
  return spec;
}

TEST(ExperimentSpec, GridIsCartesianInDeclarationOrder) {
  ExperimentSpec spec;
  spec.node_counts = {8, 16};
  spec.attacker_fractions = {0.0, 0.25, 0.5};
  spec.mobility_presets = {MobilityPreset::kStatic, MobilityPreset::kHighChurn};
  const auto grid = spec.grid();
  ASSERT_EQ(grid.size(), 12u);
  EXPECT_EQ(grid[0].num_nodes, 8u);
  EXPECT_EQ(grid[0].attacker_fraction, 0.0);
  EXPECT_EQ(grid[0].mobility, MobilityPreset::kStatic);
  EXPECT_EQ(grid[1].mobility, MobilityPreset::kHighChurn);
  EXPECT_EQ(grid[11].num_nodes, 16u);
  EXPECT_EQ(grid[11].attacker_fraction, 0.5);
}

TEST(ExperimentSpec, ExpandAssignsStableIndices) {
  auto spec = small_spec();
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), spec.replication_count());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].rounds, spec.rounds);
  }
  // Seeds vary within a point; points are contiguous.
  EXPECT_EQ(tasks[0].point_index, tasks[1].point_index);
  EXPECT_NE(tasks[0].seed, tasks[1].seed);
  EXPECT_NE(tasks[1].point_index, tasks[2].point_index);
}

TEST(ExperimentSpec, SeedRangeIsDistinctAndDeterministic) {
  const auto a = ExperimentSpec::seed_range(42, 64);
  const auto b = ExperimentSpec::seed_range(42, 64);
  EXPECT_EQ(a, b);
  std::set<std::uint64_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 64u);
  EXPECT_EQ(unique.count(0), 0u);
}

TEST(GridPoint, LiarCountRoundsAndClamps) {
  EXPECT_EQ((GridPoint{16, 0.0, MobilityPreset::kStatic}).num_liars(), 0u);
  // 14 bystanders * 0.29 = 4.06 -> 4, the paper's headline ratio.
  EXPECT_EQ((GridPoint{16, 0.29, MobilityPreset::kStatic}).num_liars(), 4u);
  EXPECT_EQ((GridPoint{16, 1.0, MobilityPreset::kStatic}).num_liars(), 14u);
  EXPECT_EQ((GridPoint{4, 0.5, MobilityPreset::kStatic}).num_liars(), 1u);
}

TEST(MobilityPresetNames, RoundTrip) {
  for (auto preset : {MobilityPreset::kStatic, MobilityPreset::kLowChurn,
                      MobilityPreset::kHighChurn}) {
    MobilityPreset parsed;
    ASSERT_TRUE(parse_mobility_preset(to_string(preset), parsed));
    EXPECT_EQ(parsed, preset);
  }
  MobilityPreset ignored;
  EXPECT_FALSE(parse_mobility_preset("vehicular", ignored));
}

void expect_identical(const std::vector<ReplicationResult>& a,
                      const std::vector<ReplicationResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task_index, b[i].task_index);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].final_verdict, b[i].final_verdict);
    EXPECT_EQ(a[i].final_detect, b[i].final_detect);  // bitwise
    EXPECT_EQ(a[i].final_margin, b[i].final_margin);
    EXPECT_EQ(a[i].conviction_round, b[i].conviction_round);
    EXPECT_EQ(a[i].attacker_trust, b[i].attacker_trust);
    EXPECT_EQ(a[i].mean_liar_trust, b[i].mean_liar_trust);
    EXPECT_EQ(a[i].mean_honest_trust, b[i].mean_honest_trust);
    EXPECT_EQ(a[i].control_messages, b[i].control_messages);
    EXPECT_EQ(a[i].detect_per_round, b[i].detect_per_round);
  }
}

TEST(Runner, FixedSeedGridIsDeterministicAcrossRuns) {
  const auto spec = small_spec();
  Runner runner{{.threads = 1}};
  const auto first = runner.run(spec);
  const auto second = runner.run(spec);
  expect_identical(first, second);
  ASSERT_EQ(first.size(), 4u);
  for (const auto& r : first) {
    EXPECT_EQ(static_cast<std::size_t>(r.detect_per_round.size()), 3u);
    EXPECT_GT(r.control_messages, 0u);
  }
}

TEST(Runner, OneThreadAndManyThreadsAgreeBitwise) {
  const auto spec = small_spec();
  Runner serial{{.threads = 1}};
  Runner parallel{{.threads = 4}};
  const auto a = serial.run(spec);
  const auto b = parallel.run(spec);
  expect_identical(a, b);

  // ... and so do the aggregates, down to the byte.
  Aggregator agg{0.95};
  EXPECT_EQ(Aggregator::to_csv(agg.aggregate(a)),
            Aggregator::to_csv(agg.aggregate(b)));
  EXPECT_EQ(Aggregator::to_json(agg.aggregate(a)),
            Aggregator::to_json(agg.aggregate(b)));
}

TEST(Runner, ProgressCoversEveryReplication) {
  const auto spec = small_spec();
  Runner runner{{.threads = 2}};
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> last_total{0};
  runner.set_progress([&](std::size_t, std::size_t total) {
    ++calls;
    last_total = total;
  });
  const auto results = runner.run(spec);
  EXPECT_EQ(calls.load(), results.size());
  EXPECT_EQ(last_total.load(), results.size());
}

TEST(Runner, EffectiveThreadsClampsToTaskCount) {
  Runner runner{{.threads = 8}};
  EXPECT_EQ(runner.effective_threads(3), 3u);
  EXPECT_EQ(runner.effective_threads(100), 8u);
  Runner solo{{.threads = 1}};
  EXPECT_EQ(solo.effective_threads(100), 1u);
}

TEST(RunReplication, ZeroRoundsThrowsInsteadOfFakingAResult) {
  ReplicationTask task;
  task.point = GridPoint{8, 0.0, MobilityPreset::kStatic};
  task.rounds = 0;
  EXPECT_THROW(run_replication(task), std::invalid_argument);
}

TEST(Runner, WorkerExceptionIsRethrown) {
  // 3 nodes violates TrustExperiment's minimum and must surface, not hang.
  ReplicationTask bad;
  bad.point = GridPoint{3, 0.0, MobilityPreset::kStatic};
  std::vector<ReplicationTask> tasks(6, bad);
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i].index = i;
  Runner runner{{.threads = 3}};
  EXPECT_THROW(runner.run(tasks), std::invalid_argument);
}

// Synthetic results with known numbers: the aggregator must reproduce
// stats::confidence_interval exactly and group by point correctly.
TEST(Aggregator, MatchesStatsConfidenceLayer) {
  const GridPoint point{16, 0.29, MobilityPreset::kStatic};
  const std::vector<double> detects{-0.8, -0.6, -0.7, -0.9};
  std::vector<ReplicationResult> results;
  for (std::size_t i = 0; i < detects.size(); ++i) {
    ReplicationResult r;
    r.task_index = i;
    r.point_index = 0;
    r.point = point;
    r.final_detect = detects[i];
    r.conviction_round = (i < 3) ? static_cast<int>(i) + 2 : -1;
    r.attacker_trust = 0.1 * static_cast<double>(i);
    r.mean_liar_trust = 0.05;
    r.mean_honest_trust = 0.5;
    r.control_messages = 100 + i;
    results.push_back(std::move(r));
  }

  Aggregator agg{0.95};
  const auto rows = agg.aggregate(results);
  ASSERT_EQ(rows.size(), 1u);
  const auto& row = rows[0];
  EXPECT_EQ(row.replications, 4u);
  EXPECT_EQ(row.convicted, 3u);
  EXPECT_DOUBLE_EQ(row.detection_rate, 0.75);

  const auto expected = stats::confidence_interval(detects, 0.95);
  EXPECT_DOUBLE_EQ(row.final_detect.mean, expected.mean);
  EXPECT_DOUBLE_EQ(row.final_detect.margin, expected.margin);

  const std::vector<double> rounds{2.0, 3.0, 4.0};
  const auto expected_rounds = stats::confidence_interval(rounds, 0.95);
  EXPECT_DOUBLE_EQ(row.conviction_round.mean, expected_rounds.mean);
  EXPECT_DOUBLE_EQ(row.conviction_round.margin, expected_rounds.margin);
}

TEST(Aggregator, NoConvictionsYieldsSentinelRound) {
  ReplicationResult r;
  r.point = GridPoint{8, 0.0, MobilityPreset::kStatic};
  r.conviction_round = -1;
  Aggregator agg{0.95};
  const auto rows = agg.aggregate(std::vector<ReplicationResult>{r});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].convicted, 0u);
  EXPECT_DOUBLE_EQ(rows[0].conviction_round.mean, -1.0);
  EXPECT_DOUBLE_EQ(rows[0].conviction_round.margin, 0.0);
  // A single sample has unknown spread; aggregates report margin 0 (not the
  // Eq. 9 max_margin sentinel, which is sized for Detect's [-1,1] domain).
  EXPECT_DOUBLE_EQ(rows[0].final_detect.margin, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].control_messages.margin, 0.0);
}

TEST(Aggregator, DegradationCsvLeavesReconvergeCellEmptyWhenNoneReconverged) {
  // reconverge_mean = -1 is the "no replication re-converged" sentinel; it
  // must surface as an empty CSV cell, not as -1.000000 that would poison
  // downstream averaging.
  ReplicationResult r;
  r.point = GridPoint{8, 0.0, MobilityPreset::kStatic};
  r.down_per_round = {1};
  r.false_conv_per_round = {0};
  r.suppressed_per_round = {0};
  r.converged_per_round = {false};
  r.reconverge_rounds = -1;
  Aggregator agg{0.95};
  const auto csv = Aggregator::degradation_csv(
      agg.degradation(std::vector<ReplicationResult>{r}));
  EXPECT_EQ(csv.find("-1.000000"), std::string::npos) << csv;
  // The data row ends with ",converged_frac," and an empty final cell.
  EXPECT_NE(csv.find("0.000000,\n"), std::string::npos) << csv;

  // A replication that did re-converge still reports the mean.
  r.reconverge_rounds = 3;
  const auto csv2 = Aggregator::degradation_csv(
      agg.degradation(std::vector<ReplicationResult>{r}));
  EXPECT_NE(csv2.find("3.000000\n"), std::string::npos) << csv2;
}

TEST(Aggregator, PerRoundTrajectoryAverages) {
  const GridPoint point{8, 0.34, MobilityPreset::kStatic};
  std::vector<ReplicationResult> results;
  for (int i = 0; i < 2; ++i) {
    ReplicationResult r;
    r.point_index = 0;
    r.point = point;
    r.detect_per_round = {i == 0 ? -0.2 : -0.4, i == 0 ? -0.6 : -0.8};
    results.push_back(std::move(r));
  }
  Aggregator agg{0.95};
  const auto rows = agg.per_round(results);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].round, 1);
  EXPECT_DOUBLE_EQ(rows[0].detect.mean, -0.3);
  EXPECT_EQ(rows[1].round, 2);
  EXPECT_DOUBLE_EQ(rows[1].detect.mean, -0.7);
}

TEST(Aggregator, CsvShapeIsStable) {
  ReplicationResult r;
  r.point = GridPoint{16, 0.29, MobilityPreset::kLowChurn};
  r.final_detect = -0.5;
  Aggregator agg{0.95};
  const auto csv = Aggregator::to_csv(agg.aggregate(std::vector{r}));
  // Header + one row, 19 columns each.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 2);
  const auto commas_first_line =
      std::count(csv.begin(), csv.begin() + static_cast<long>(csv.find('\n')),
                 ',');
  EXPECT_EQ(commas_first_line, 18);
  EXPECT_NE(csv.find("16,0.290000,4,low"), std::string::npos);
}

}  // namespace
}  // namespace manet::runtime
