// Tests for the signature engine and the predefined OLSR intrusion
// signatures (the paper's "partially ordered sequences of events").

#include <gtest/gtest.h>

#include "core/signature.hpp"
#include "core/signatures_olsr.hpp"

namespace manet::core {
namespace {

using logging::LogRecord;
using net::NodeId;

LogRecord rec(double t, const std::string& event) {
  LogRecord r;
  r.time = sim::Time::from_seconds(t);
  r.node = NodeId{0};
  r.event = event;
  return r;
}

EventPattern on_event(const std::string& name) {
  return {name, [name](const LogRecord& r) { return r.event == name; }};
}

TEST(SignatureMatcher, SimpleOrderedSequence) {
  Signature sig;
  sig.name = "ab";
  sig.window = sim::Duration::from_seconds(10);
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("a");
  sig.steps[1].pattern = on_event("b");
  sig.steps[1].after = {0};

  SignatureMatcher m;
  m.add_signature(sig);
  EXPECT_TRUE(m.feed(rec(1, "a")).empty());
  const auto matches = m.feed(rec(2, "b"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].signature, "ab");
  EXPECT_EQ(matches[0].records.size(), 2u);
}

TEST(SignatureMatcher, OrderingEnforced) {
  Signature sig;
  sig.name = "ab";
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("a");
  sig.steps[1].pattern = on_event("b");
  sig.steps[1].after = {0};

  SignatureMatcher m;
  m.add_signature(sig);
  // b before a: the b cannot match step 1 (dependency unmet), and a alone
  // is incomplete.
  EXPECT_TRUE(m.feed(rec(1, "b")).empty());
  EXPECT_TRUE(m.feed(rec(2, "a")).empty());
  // now a fresh b completes the partial opened by the a.
  EXPECT_EQ(m.feed(rec(3, "b")).size(), 1u);
}

TEST(SignatureMatcher, UnorderedStepsMatchEitherWay) {
  Signature sig;
  sig.name = "xy";
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("x");
  sig.steps[1].pattern = on_event("y");
  // no `after`: partial order allows any interleaving

  SignatureMatcher m;
  m.add_signature(sig);
  EXPECT_TRUE(m.feed(rec(1, "y")).empty());
  EXPECT_EQ(m.feed(rec(2, "x")).size(), 1u);
}

TEST(SignatureMatcher, WindowExpiresPartials) {
  Signature sig;
  sig.name = "ab";
  sig.window = sim::Duration::from_seconds(5);
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("a");
  sig.steps[1].pattern = on_event("b");
  sig.steps[1].after = {0};

  SignatureMatcher m;
  m.add_signature(sig);
  m.feed(rec(1, "a"));
  // 10 s later: the partial is stale, b must not complete it.
  EXPECT_TRUE(m.feed(rec(11, "b")).empty());
}

TEST(SignatureMatcher, OptionalStepNotRequired) {
  Signature sig;
  sig.name = "a-opt-b";
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("a");
  sig.steps[1].pattern = on_event("b");
  sig.steps[1].optional = true;

  SignatureMatcher m;
  m.add_signature(sig);
  EXPECT_EQ(m.feed(rec(1, "a")).size(), 1u);
}

TEST(SignatureMatcher, CorrelationFieldTiesRecords) {
  Signature sig;
  sig.name = "two_from_same";
  sig.correlate_field = "from";
  sig.steps.resize(2);
  sig.steps[0].pattern = on_event("e");
  sig.steps[1].pattern = on_event("e");
  sig.steps[1].after = {0};

  SignatureMatcher m;
  m.add_signature(sig);
  auto r1 = rec(1, "e");
  r1.with("from", "n1");
  auto r2 = rec(2, "e");
  r2.with("from", "n2");
  auto r3 = rec(3, "e");
  r3.with("from", "n1");
  EXPECT_TRUE(m.feed(r1).empty());
  EXPECT_TRUE(m.feed(r2).empty());  // different correlation value
  const auto matches = m.feed(r3);
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].correlated_value, "n1");
}

TEST(SignatureMatcher, ConstraintVetoesCompletion) {
  Signature sig;
  sig.name = "constrained";
  sig.steps.resize(1);
  sig.steps[0].pattern = on_event("e");
  sig.constraint = [](const std::vector<const LogRecord*>& recs) {
    return recs[0]->field("ok").value_or("") == "1";
  };

  SignatureMatcher m;
  m.add_signature(sig);
  auto bad = rec(1, "e");
  bad.with("ok", "0");
  EXPECT_TRUE(m.feed(bad).empty());
  auto good = rec(2, "e");
  good.with("ok", "1");
  EXPECT_EQ(m.feed(good).size(), 1u);
}

TEST(SignatureMatcher, MultipleSignaturesIndependent) {
  SignatureMatcher m;
  Signature s1;
  s1.name = "s1";
  s1.steps.resize(1);
  s1.steps[0].pattern = on_event("a");
  Signature s2;
  s2.name = "s2";
  s2.steps.resize(1);
  s2.steps[0].pattern = on_event("b");
  m.add_signature(s1);
  m.add_signature(s2);
  EXPECT_EQ(m.feed(rec(1, "a"))[0].signature, "s1");
  EXPECT_EQ(m.feed(rec(2, "b"))[0].signature, "s2");
}

// --- predefined OLSR signatures ---

LogRecord hello_recv(double t, NodeId from, const std::vector<NodeId>& sym,
                     const std::vector<NodeId>& asym = {}) {
  auto r = rec(t, "hello_recv");
  r.with("from", from)
      .with("sym", logging::join_node_list(sym))
      .with("asym", logging::join_node_list(asym));
  return r;
}

TEST(OlsrSignatures, LinkSpoofingClaimFires) {
  SignatureMatcher m;
  m.add_signature(
      link_spoofing_claim_signature(sim::Duration::from_seconds(6)));
  // I=n1 claims X=n2; X=n2's own HELLO omits n1.
  m.feed(hello_recv(1, NodeId{1}, {NodeId{2}, NodeId{3}}));
  const auto matches = m.feed(hello_recv(2, NodeId{2}, {NodeId{3}}));
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].signature, "link_spoofing_claim");
}

TEST(OlsrSignatures, LinkSpoofingClaimSilentWhenConsistent) {
  SignatureMatcher m;
  m.add_signature(
      link_spoofing_claim_signature(sim::Duration::from_seconds(6)));
  m.feed(hello_recv(1, NodeId{1}, {NodeId{2}}));
  EXPECT_TRUE(m.feed(hello_recv(2, NodeId{2}, {NodeId{1}})).empty());
}

TEST(OlsrSignatures, LinkOmissionFires) {
  SignatureMatcher m;
  m.add_signature(link_omission_signature(sim::Duration::from_seconds(6)));
  // X=n2 claims n1; I=n1's HELLO lists n2 neither SYM nor ASYM.
  m.feed(hello_recv(1, NodeId{2}, {NodeId{1}}));
  const auto matches = m.feed(hello_recv(2, NodeId{1}, {NodeId{3}}));
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].signature, "link_omission");
}

TEST(OlsrSignatures, LinkOmissionToleratesAsymTransitional) {
  SignatureMatcher m;
  m.add_signature(link_omission_signature(sim::Duration::from_seconds(6)));
  m.feed(hello_recv(1, NodeId{2}, {NodeId{1}}));
  // n1 lists n2 as ASYM (link coming up) — not an omission.
  EXPECT_TRUE(m.feed(hello_recv(2, NodeId{1}, {NodeId{3}}, {NodeId{2}})).empty());
}

TEST(OlsrSignatures, StormFiresOnBurstFromOneOriginator) {
  SignatureMatcher m;
  m.add_signature(storm_signature(5, sim::Duration::from_seconds(5)));
  std::vector<SignatureMatch> all;
  for (int i = 0; i < 5; ++i) {
    auto r = rec(1.0 + i * 0.1, "tc_recv");
    r.with("orig", "n9");
    auto got = m.feed(r);
    all.insert(all.end(), got.begin(), got.end());
  }
  ASSERT_GE(all.size(), 1u);
  EXPECT_EQ(all[0].signature, "broadcast_storm");
  EXPECT_EQ(all[0].correlated_value, "n9");
}

TEST(OlsrSignatures, StormIgnoresMixedOriginators) {
  SignatureMatcher m;
  m.add_signature(storm_signature(5, sim::Duration::from_seconds(5)));
  for (int i = 0; i < 8; ++i) {
    auto r = rec(1.0 + i * 0.1, "tc_recv");
    std::string orig = "n";  // += dodges GCC 12's -Wrestrict false positive
    orig += std::to_string(i);
    r.with("orig", orig);  // all different
    EXPECT_TRUE(m.feed(r).empty());
  }
}

TEST(OlsrSignatures, DropSignatureMatchesSeqPair) {
  SignatureMatcher m;
  m.add_signature(drop_signature(sim::Duration::from_seconds(10)));
  auto sent = rec(1, "tc_sent");
  sent.with("seq", std::int64_t{42});
  m.feed(sent);
  auto timeout = rec(4, "mpr_fwd_timeout");
  timeout.with("mpr", "n3").with("seq", std::int64_t{42});
  const auto matches = m.feed(timeout);
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].signature, "mpr_drop");
}

TEST(OlsrSignatures, DropSignatureRejectsSeqMismatch) {
  SignatureMatcher m;
  m.add_signature(drop_signature(sim::Duration::from_seconds(10)));
  auto sent = rec(1, "tc_sent");
  sent.with("seq", std::int64_t{42});
  m.feed(sent);
  auto timeout = rec(4, "mpr_fwd_timeout");
  timeout.with("mpr", "n3").with("seq", std::int64_t{43});
  EXPECT_TRUE(m.feed(timeout).empty());
}

TEST(OlsrSignatures, MprReplacementFiresOnAddition) {
  SignatureMatcher m;
  m.add_signature(mpr_replacement_signature());
  auto change = rec(1, "mpr_changed");
  change.with("mprs", "n1|n2").with("added", "n2").with("removed", "n3");
  EXPECT_EQ(m.feed(change).size(), 1u);
  auto pure_removal = rec(2, "mpr_changed");
  pure_removal.with("mprs", "n1").with("added", "").with("removed", "n2");
  EXPECT_TRUE(m.feed(pure_removal).empty());
}

}  // namespace
}  // namespace manet::core
