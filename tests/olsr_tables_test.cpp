// Unit tests for the OLSR information bases: link set, neighbor/2-hop
// tables, topology set, duplicate set, MID/HNA sets, routing table.

#include <gtest/gtest.h>

#include "olsr/assoc_sets.hpp"
#include "olsr/duplicate_set.hpp"
#include "olsr/link_set.hpp"
#include "olsr/neighbor_table.hpp"
#include "olsr/routing_table.hpp"
#include "olsr/topology_set.hpp"

namespace manet::olsr {
namespace {

constexpr auto kVtime = sim::Duration::from_seconds(6.0);

sim::Time t(double s) { return sim::Time::from_seconds(s); }

TEST(LinkSet, HeardOnlyIsAsymmetric) {
  LinkSet ls;
  const auto change = ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kBecameAsym);
  EXPECT_FALSE(ls.is_symmetric(t(0), NodeId{1}));
  EXPECT_EQ(ls.asymmetric_neighbors(t(1)),
            (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, ListedUpgradesToSymmetric) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  const auto change = ls.on_hello(t(2), NodeId{1}, true, false, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kBecameSym);
  EXPECT_TRUE(ls.is_symmetric(t(2), NodeId{1}));
  EXPECT_EQ(ls.symmetric_neighbors(t(3)), (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, LostDeclarationDowngrades) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  ASSERT_TRUE(ls.is_symmetric(t(1), NodeId{1}));
  const auto change = ls.on_hello(t(2), NodeId{1}, false, true, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kLost);
  EXPECT_FALSE(ls.is_symmetric(t(2), NodeId{1}));
}

TEST(LinkSet, SymmetryTimesOut) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  EXPECT_TRUE(ls.is_symmetric(t(5.9), NodeId{1}));
  EXPECT_FALSE(ls.is_symmetric(t(6.1), NodeId{1}));
  const auto lost = ls.expire(t(6.1));
  EXPECT_EQ(lost, (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, ExpireRemovesFullyStaleTuples) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  EXPECT_EQ(ls.size(), 1u);
  ls.expire(t(7));
  EXPECT_EQ(ls.size(), 0u);
}

TEST(LinkSet, RefreshKeepsLinkAlive) {
  LinkSet ls;
  for (double s = 0; s < 20; s += 2) ls.on_hello(t(s), NodeId{1}, true, false, kVtime);
  EXPECT_TRUE(ls.is_symmetric(t(20), NodeId{1}));
}

TEST(NeighborTable, UpsertAndRemove) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kHigh, true);
  ASSERT_TRUE(nt.neighbor(NodeId{1}).has_value());
  EXPECT_EQ(nt.willingness_of(NodeId{1}), Willingness::kHigh);
  EXPECT_EQ(nt.symmetric_neighbors(), (std::vector<NodeId>{NodeId{1}}));
  nt.remove_neighbor(NodeId{1});
  EXPECT_FALSE(nt.neighbor(NodeId{1}).has_value());
}

TEST(NeighborTable, StrictTwoHopsExcludesSelfAndNeighbors) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  nt.upsert_neighbor(NodeId{2}, Willingness::kDefault, true);
  // n1 advertises: me (n0), n2 (also my neighbor), n3 (true 2-hop).
  nt.set_two_hops_via(NodeId{1}, {NodeId{0}, NodeId{2}, NodeId{3}}, t(100));
  const auto strict = nt.strict_two_hops(NodeId{0});
  EXPECT_EQ(strict, (std::set<NodeId>{NodeId{3}}));
}

TEST(NeighborTable, TwoHopsViaNonSymmetricNeighborIgnored) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, false);
  nt.set_two_hops_via(NodeId{1}, {NodeId{3}}, t(100));
  EXPECT_TRUE(nt.strict_two_hops(NodeId{0}).empty());
}

TEST(NeighborTable, ReachabilityExcludesWillNever) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kNever, true);
  nt.upsert_neighbor(NodeId{2}, Willingness::kDefault, true);
  nt.set_two_hops_via(NodeId{1}, {NodeId{5}}, t(100));
  nt.set_two_hops_via(NodeId{2}, {NodeId{5}}, t(100));
  const auto reach = nt.reachability(NodeId{0});
  EXPECT_FALSE(reach.contains(NodeId{1}));
  EXPECT_TRUE(reach.contains(NodeId{2}));
}

TEST(NeighborTable, TwoHopExpiry) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  nt.set_two_hops_via(NodeId{1}, {NodeId{3}}, t(5));
  EXPECT_EQ(nt.two_hops_via(NodeId{1}).size(), 1u);
  nt.expire_two_hops(t(6));
  EXPECT_TRUE(nt.two_hops_via(NodeId{1}).empty());
}

TEST(NeighborTable, SetTwoHopsReplacesOldAdvertisement) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  nt.set_two_hops_via(NodeId{1}, {NodeId{3}, NodeId{4}}, t(100));
  nt.set_two_hops_via(NodeId{1}, {NodeId{5}}, t(100));
  EXPECT_EQ(nt.two_hops_via(NodeId{1}), (std::set<NodeId>{NodeId{5}}));
}

TEST(TopologySet, RecordsAndExpires) {
  TopologySet ts;
  EXPECT_TRUE(ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}, NodeId{3}}, kVtime));
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.advertised_by(NodeId{1}).size(), 2u);
  ts.expire(t(7));
  EXPECT_EQ(ts.size(), 0u);
}

TEST(TopologySet, StaleAnsnRejected) {
  TopologySet ts;
  EXPECT_TRUE(ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}}, kVtime));
  EXPECT_FALSE(ts.on_tc(t(1), NodeId{1}, 9, {NodeId{9}}, kVtime));
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{2}}));
}

TEST(TopologySet, NewerAnsnReplacesOlderTuples) {
  TopologySet ts;
  ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}, NodeId{3}}, kVtime);
  ts.on_tc(t(1), NodeId{1}, 11, {NodeId{4}}, kVtime);
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{4}}));
}

TEST(TopologySet, AnsnWraparound) {
  TopologySet ts;
  ts.on_tc(t(0), NodeId{1}, 65530, {NodeId{2}}, kVtime);
  // 5 is "newer" than 65530 modulo 2^16 (RFC 3626 §19).
  EXPECT_TRUE(ts.on_tc(t(1), NodeId{1}, 5, {NodeId{3}}, kVtime));
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{3}}));
}

TEST(DuplicateSet, SeenAndForwarded) {
  DuplicateSet ds;
  EXPECT_FALSE(ds.seen(NodeId{1}, 5));
  ds.record(t(0), NodeId{1}, 5, false, kVtime);
  EXPECT_TRUE(ds.seen(NodeId{1}, 5));
  EXPECT_FALSE(ds.forwarded(NodeId{1}, 5));
  ds.record(t(1), NodeId{1}, 5, true, kVtime);
  EXPECT_TRUE(ds.forwarded(NodeId{1}, 5));
}

TEST(DuplicateSet, ForwardedFlagSticky) {
  DuplicateSet ds;
  ds.record(t(0), NodeId{1}, 5, true, kVtime);
  ds.record(t(1), NodeId{1}, 5, false, kVtime);
  EXPECT_TRUE(ds.forwarded(NodeId{1}, 5));
}

TEST(DuplicateSet, Expiry) {
  DuplicateSet ds;
  ds.record(t(0), NodeId{1}, 5, false, sim::Duration::from_seconds(2.0));
  ds.expire(t(3));
  EXPECT_FALSE(ds.seen(NodeId{1}, 5));
}

TEST(MidSet, ResolvesInterfaceToMain) {
  MidSet ms;
  ms.on_mid(t(0), NodeId{1}, {NodeId{100}, NodeId{101}}, kVtime);
  EXPECT_EQ(ms.main_address_of(NodeId{100}), NodeId{1});
  EXPECT_EQ(ms.main_address_of(NodeId{101}), NodeId{1});
  // Unknown interfaces resolve to themselves (§5.4).
  EXPECT_EQ(ms.main_address_of(NodeId{55}), NodeId{55});
  EXPECT_EQ(ms.interfaces_of(NodeId{1}).size(), 2u);
  ms.expire(t(7));
  EXPECT_EQ(ms.main_address_of(NodeId{100}), NodeId{100});
}

TEST(HnaSet, GatewaysForNetwork) {
  HnaSet hs;
  hs.on_hna(t(0), NodeId{1}, {{0x0A000000u, 8}}, kVtime);
  hs.on_hna(t(0), NodeId{2}, {{0x0A000000u, 8}}, kVtime);
  const auto gws = hs.gateways_for(0x0A000000u, 8);
  EXPECT_EQ(gws.size(), 2u);
  EXPECT_TRUE(hs.gateways_for(0x0B000000u, 8).empty());
  hs.expire(t(7));
  EXPECT_TRUE(hs.gateways_for(0x0A000000u, 8).empty());
}

KnowledgeGraph line_graph(int n) {
  KnowledgeGraph g;
  for (int i = 0; i + 1 < n; ++i) {
    g[NodeId{static_cast<std::uint32_t>(i)}].insert(
        NodeId{static_cast<std::uint32_t>(i + 1)});
    g[NodeId{static_cast<std::uint32_t>(i + 1)}].insert(
        NodeId{static_cast<std::uint32_t>(i)});
  }
  return g;
}

TEST(RoutingTable, LineGraphDistances) {
  RoutingTable rt;
  rt.recompute(NodeId{0}, line_graph(5));
  EXPECT_EQ(rt.size(), 4u);
  for (std::uint32_t d = 1; d <= 4; ++d) {
    const auto e = rt.route_to(NodeId{d});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->distance, static_cast<int>(d));
    EXPECT_EQ(e->next_hop, NodeId{1});  // everything goes through n1
  }
}

TEST(RoutingTable, PathReconstruction) {
  RoutingTable rt;
  rt.recompute(NodeId{0}, line_graph(4));
  const auto path = rt.path_to(NodeId{3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
}

TEST(RoutingTable, UnreachableIsAbsent) {
  KnowledgeGraph g = line_graph(3);
  g[NodeId{10}].insert(NodeId{11});  // disconnected island
  g[NodeId{11}].insert(NodeId{10});
  RoutingTable rt;
  rt.recompute(NodeId{0}, g);
  EXPECT_FALSE(rt.route_to(NodeId{10}).has_value());
  EXPECT_FALSE(rt.path_to(NodeId{10}).has_value());
}

TEST(RoutingTable, RecomputeReportsDiff) {
  RoutingTable rt;
  auto [added1, removed1] = rt.recompute(NodeId{0}, line_graph(3));
  EXPECT_EQ(added1.size(), 2u);
  EXPECT_TRUE(removed1.empty());
  auto [added2, removed2] = rt.recompute(NodeId{0}, line_graph(2));
  EXPECT_TRUE(added2.empty());
  EXPECT_EQ(removed2.size(), 1u);
}

TEST(RoutingTable, ShortestPathAvoidsNodes) {
  // Diamond: 0-1-3 and 0-2-3.
  KnowledgeGraph g;
  auto link = [&](std::uint32_t a, std::uint32_t b) {
    g[NodeId{a}].insert(NodeId{b});
    g[NodeId{b}].insert(NodeId{a});
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);

  const auto direct = RoutingTable::shortest_path(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->size(), 2u);

  const auto avoiding =
      RoutingTable::shortest_path(g, NodeId{0}, NodeId{3}, {NodeId{1}});
  ASSERT_TRUE(avoiding.has_value());
  EXPECT_EQ(*avoiding, (std::vector<NodeId>{NodeId{2}, NodeId{3}}));

  const auto blocked = RoutingTable::shortest_path(g, NodeId{0}, NodeId{3},
                                                   {NodeId{1}, NodeId{2}});
  EXPECT_FALSE(blocked.has_value());
}

TEST(RoutingTable, AvoidedDestinationStillReachable) {
  // Avoiding X as a relay must not forbid X as the final destination.
  KnowledgeGraph g;
  g[NodeId{0}].insert(NodeId{1});
  g[NodeId{1}].insert(NodeId{0});
  const auto p =
      RoutingTable::shortest_path(g, NodeId{0}, NodeId{1}, {NodeId{1}});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{NodeId{1}}));
}

TEST(RoutingTable, SelfPathIsEmpty) {
  const auto p =
      RoutingTable::shortest_path(line_graph(3), NodeId{0}, NodeId{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

}  // namespace
}  // namespace manet::olsr
