// Unit tests for the OLSR information bases: link set, neighbor/2-hop
// tables, topology set, duplicate set, MID/HNA sets, routing table.
//
// The flat-slab storage (PR 6) is additionally pinned against reference
// map/set implementations by a randomized 50-seed equivalence suite at the
// bottom of this file.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "olsr/assoc_sets.hpp"
#include "olsr/duplicate_set.hpp"
#include "olsr/link_set.hpp"
#include "olsr/neighbor_table.hpp"
#include "olsr/routing_table.hpp"
#include "olsr/topology_set.hpp"
#include "sim/rng.hpp"

namespace manet::olsr {
namespace {

constexpr auto kVtime = sim::Duration::from_seconds(6.0);

sim::Time t(double s) { return sim::Time::from_seconds(s); }

std::vector<NodeId> reach_of(const NeighborTable::Reachability& reach,
                             NodeId via) {
  for (const auto& [v, ths] : reach)
    if (v == via) return ths;
  return {};
}

TEST(LinkSet, HeardOnlyIsAsymmetric) {
  LinkSet ls;
  const auto change = ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kBecameAsym);
  EXPECT_FALSE(ls.is_symmetric(t(0), NodeId{1}));
  EXPECT_EQ(ls.asymmetric_neighbors(t(1)),
            (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, ListedUpgradesToSymmetric) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  const auto change = ls.on_hello(t(2), NodeId{1}, true, false, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kBecameSym);
  EXPECT_TRUE(ls.is_symmetric(t(2), NodeId{1}));
  EXPECT_EQ(ls.symmetric_neighbors(t(3)), (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, LostDeclarationDowngrades) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  ASSERT_TRUE(ls.is_symmetric(t(1), NodeId{1}));
  const auto change = ls.on_hello(t(2), NodeId{1}, false, true, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kLost);
  EXPECT_FALSE(ls.is_symmetric(t(2), NodeId{1}));
}

TEST(LinkSet, SymmetryTimesOut) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  EXPECT_TRUE(ls.is_symmetric(t(5.9), NodeId{1}));
  EXPECT_FALSE(ls.is_symmetric(t(6.1), NodeId{1}));
  const auto lost = ls.expire(t(6.1));
  EXPECT_EQ(lost, (std::vector<NodeId>{NodeId{1}}));
}

TEST(LinkSet, ExpireRemovesFullyStaleTuples) {
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, false, false, kVtime);
  EXPECT_EQ(ls.size(), 1u);
  ls.expire(t(7));
  EXPECT_EQ(ls.size(), 0u);
}

TEST(LinkSet, RefreshKeepsLinkAlive) {
  LinkSet ls;
  for (double s = 0; s < 20; s += 2) ls.on_hello(t(s), NodeId{1}, true, false, kVtime);
  EXPECT_TRUE(ls.is_symmetric(t(20), NodeId{1}));
}

TEST(LinkSet, ReAddAfterExpireStartsFresh) {
  // A neighbor that expired out of the slab and comes back must be treated
  // as brand new: the compaction sweep must not leave stale state behind.
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  ls.expire(t(7));
  ASSERT_EQ(ls.size(), 0u);
  const auto change = ls.on_hello(t(10), NodeId{1}, false, false, kVtime);
  EXPECT_EQ(change, LinkSet::Change::kBecameAsym);
  EXPECT_FALSE(ls.is_symmetric(t(10), NodeId{1}));
  EXPECT_EQ(ls.size(), 1u);
  // Upgrading again works exactly like the first time.
  EXPECT_EQ(ls.on_hello(t(11), NodeId{1}, true, false, kVtime),
            LinkSet::Change::kBecameSym);
}

TEST(LinkSet, VtimeBoundaryIsExclusive) {
  // symmetric() is sym_until > now and expiry is valid_until <= now: at the
  // exact boundary instant the link is already down/gone. The slab sweep
  // must agree with the point lookups.
  LinkSet ls;
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  EXPECT_TRUE(ls.is_symmetric(t(5.999999), NodeId{1}));
  EXPECT_FALSE(ls.is_symmetric(t(6.0), NodeId{1}));
  EXPECT_TRUE(ls.symmetric_neighbors(t(6.0)).empty());
  const auto lost = ls.expire(t(6.0));
  EXPECT_EQ(lost, (std::vector<NodeId>{NodeId{1}}));
  EXPECT_EQ(ls.size(), 0u);
}

TEST(LinkSet, NextTransitionTracksEarliestBoundary) {
  LinkSet ls;
  EXPECT_EQ(ls.next_transition(t(0)), LinkSet::kNoTransition);
  ls.on_hello(t(0), NodeId{1}, true, false, kVtime);
  ls.on_hello(t(1), NodeId{2}, true, false, kVtime);
  // Earliest boundary is n1's sym_until at t=6.
  EXPECT_EQ(ls.next_transition(t(2)), t(6));
  // Past it, the hint re-scans to n2's boundary at t=7.
  EXPECT_EQ(ls.next_transition(t(6)), t(7));
  // The hint is conservative: refreshing n1 must never push it late.
  ls.on_hello(t(6.5), NodeId{1}, true, false, kVtime);
  EXPECT_LE(ls.next_transition(t(6.5)), t(7));
}

TEST(NeighborTable, UpsertAndRemove) {
  NeighborTable nt;
  EXPECT_TRUE(nt.upsert_neighbor(NodeId{1}, Willingness::kHigh, true));
  // A verbatim repeat changes nothing.
  EXPECT_FALSE(nt.upsert_neighbor(NodeId{1}, Willingness::kHigh, true));
  ASSERT_TRUE(nt.neighbor(NodeId{1}).has_value());
  EXPECT_EQ(nt.willingness_of(NodeId{1}), Willingness::kHigh);
  EXPECT_EQ(nt.symmetric_neighbors(), (std::vector<NodeId>{NodeId{1}}));
  nt.remove_neighbor(NodeId{1});
  EXPECT_FALSE(nt.neighbor(NodeId{1}).has_value());
}

TEST(NeighborTable, StrictTwoHopsExcludesSelfAndNeighbors) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  nt.upsert_neighbor(NodeId{2}, Willingness::kDefault, true);
  // n1 advertises: me (n0), n2 (also my neighbor), n3 (true 2-hop).
  nt.set_two_hops_via(NodeId{1}, {NodeId{0}, NodeId{2}, NodeId{3}}, t(100));
  const auto strict = nt.strict_two_hops(NodeId{0});
  EXPECT_EQ(strict, (std::vector<NodeId>{NodeId{3}}));
}

TEST(NeighborTable, TwoHopsViaNonSymmetricNeighborIgnored) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, false);
  nt.set_two_hops_via(NodeId{1}, {NodeId{3}}, t(100));
  EXPECT_TRUE(nt.strict_two_hops(NodeId{0}).empty());
}

TEST(NeighborTable, ReachabilityExcludesWillNever) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kNever, true);
  nt.upsert_neighbor(NodeId{2}, Willingness::kDefault, true);
  nt.set_two_hops_via(NodeId{1}, {NodeId{5}}, t(100));
  nt.set_two_hops_via(NodeId{2}, {NodeId{5}}, t(100));
  const auto reach = nt.reachability(NodeId{0});
  EXPECT_TRUE(reach_of(reach, NodeId{1}).empty());
  EXPECT_EQ(reach_of(reach, NodeId{2}), (std::vector<NodeId>{NodeId{5}}));
}

TEST(NeighborTable, TwoHopExpiry) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  nt.set_two_hops_via(NodeId{1}, {NodeId{3}}, t(5));
  EXPECT_EQ(nt.two_hops_via(NodeId{1}).size(), 1u);
  EXPECT_TRUE(nt.expire_two_hops(t(6)));
  EXPECT_TRUE(nt.two_hops_via(NodeId{1}).empty());
  // Nothing left to remove: the sweep reports no change.
  EXPECT_FALSE(nt.expire_two_hops(t(7)));
}

TEST(NeighborTable, SetTwoHopsReplacesOldAdvertisement) {
  NeighborTable nt;
  nt.upsert_neighbor(NodeId{1}, Willingness::kDefault, true);
  EXPECT_TRUE(nt.set_two_hops_via(NodeId{1}, {NodeId{3}, NodeId{4}}, t(100)));
  EXPECT_TRUE(nt.set_two_hops_via(NodeId{1}, {NodeId{5}}, t(100)));
  EXPECT_EQ(nt.two_hops_via(NodeId{1}), (std::vector<NodeId>{NodeId{5}}));
  // Same membership, fresher expiry: a refresh, not a change.
  EXPECT_FALSE(nt.set_two_hops_via(NodeId{1}, {NodeId{5}}, t(200)));
  EXPECT_FALSE(nt.expire_two_hops(t(150)));  // refreshed past the old expiry
  EXPECT_EQ(nt.two_hops_via(NodeId{1}), (std::vector<NodeId>{NodeId{5}}));
}

TEST(TopologySet, RecordsAndExpires) {
  TopologySet ts;
  EXPECT_TRUE(ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}, NodeId{3}}, kVtime).applied);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.advertised_by(NodeId{1}).size(), 2u);
  EXPECT_TRUE(ts.expire(t(7)));
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_FALSE(ts.expire(t(8)));  // nothing left: no change reported
}

TEST(TopologySet, StaleAnsnRejected) {
  TopologySet ts;
  EXPECT_TRUE(ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}}, kVtime).applied);
  EXPECT_FALSE(ts.on_tc(t(1), NodeId{1}, 9, {NodeId{9}}, kVtime).applied);
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{2}}));
}

TEST(TopologySet, NewerAnsnReplacesOlderTuples) {
  TopologySet ts;
  ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}, NodeId{3}}, kVtime);
  const auto r = ts.on_tc(t(1), NodeId{1}, 11, {NodeId{4}}, kVtime);
  EXPECT_TRUE(r.applied);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{4}}));
}

TEST(TopologySet, SteadyStateRefreshIsNotAChange) {
  // The recompute-coalescing win: a periodic TC with a new ANSN but the
  // same advertised set refreshes timers without dirtying routes.
  TopologySet ts;
  ts.on_tc(t(0), NodeId{1}, 10, {NodeId{2}, NodeId{3}}, kVtime);
  const auto refresh = ts.on_tc(t(1), NodeId{1}, 11, {NodeId{2}, NodeId{3}}, kVtime);
  EXPECT_TRUE(refresh.applied);
  EXPECT_FALSE(refresh.changed);
  // The timers did refresh: tuples survive past the original expiry.
  EXPECT_FALSE(ts.expire(t(6.5)));
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TopologySet, AnsnWraparound) {
  TopologySet ts;
  ts.on_tc(t(0), NodeId{1}, 65530, {NodeId{2}}, kVtime);
  // 5 is "newer" than 65530 modulo 2^16 (RFC 3626 §19).
  const auto r = ts.on_tc(t(1), NodeId{1}, 5, {NodeId{3}}, kVtime);
  EXPECT_TRUE(r.applied);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(ts.advertised_by(NodeId{1}), (std::vector<NodeId>{NodeId{3}}));
  // ...and 65530 is stale relative to 5 post-wrap.
  EXPECT_FALSE(ts.on_tc(t(2), NodeId{1}, 65530, {NodeId{9}}, kVtime).applied);
  // Exactly half the sequence space away is treated as newer in one
  // direction only (the <= 32768 rule keeps the relation antisymmetric).
  TopologySet half;
  half.on_tc(t(0), NodeId{1}, 0, {NodeId{2}}, kVtime);
  EXPECT_TRUE(half.on_tc(t(1), NodeId{1}, 32768, {NodeId{3}}, kVtime).applied);
  EXPECT_FALSE(half.on_tc(t(2), NodeId{1}, 0, {NodeId{4}}, kVtime).applied);
}

TEST(DuplicateSet, SeenAndForwarded) {
  DuplicateSet ds;
  EXPECT_FALSE(ds.seen(NodeId{1}, 5));
  ds.record(t(0), NodeId{1}, 5, false, kVtime);
  EXPECT_TRUE(ds.seen(NodeId{1}, 5));
  EXPECT_FALSE(ds.forwarded(NodeId{1}, 5));
  ds.record(t(1), NodeId{1}, 5, true, kVtime);
  EXPECT_TRUE(ds.forwarded(NodeId{1}, 5));
}

TEST(DuplicateSet, ForwardedFlagSticky) {
  DuplicateSet ds;
  ds.record(t(0), NodeId{1}, 5, true, kVtime);
  ds.record(t(1), NodeId{1}, 5, false, kVtime);
  EXPECT_TRUE(ds.forwarded(NodeId{1}, 5));
}

TEST(DuplicateSet, Expiry) {
  DuplicateSet ds;
  ds.record(t(0), NodeId{1}, 5, false, sim::Duration::from_seconds(2.0));
  ds.expire(t(3));
  EXPECT_FALSE(ds.seen(NodeId{1}, 5));
}

TEST(DuplicateSet, RefreshOutlivesStaleRingSlot) {
  // A re-recorded entry leaves its first ring slot stale; popping that slot
  // must not evict the refreshed entry (the ring validates valid_until).
  DuplicateSet ds;
  ds.record(t(0), NodeId{1}, 5, false, sim::Duration::from_seconds(2.0));
  ds.record(t(1), NodeId{1}, 5, false, sim::Duration::from_seconds(2.0));
  ds.expire(t(2.5));  // past the first slot's expiry, before the second
  EXPECT_TRUE(ds.seen(NodeId{1}, 5));
  ds.expire(t(3.5));
  EXPECT_FALSE(ds.seen(NodeId{1}, 5));
}

TEST(MidSet, ResolvesInterfaceToMain) {
  MidSet ms;
  ms.on_mid(t(0), NodeId{1}, {NodeId{100}, NodeId{101}}, kVtime);
  EXPECT_EQ(ms.main_address_of(NodeId{100}), NodeId{1});
  EXPECT_EQ(ms.main_address_of(NodeId{101}), NodeId{1});
  // Unknown interfaces resolve to themselves (§5.4).
  EXPECT_EQ(ms.main_address_of(NodeId{55}), NodeId{55});
  EXPECT_EQ(ms.interfaces_of(NodeId{1}).size(), 2u);
  ms.expire(t(7));
  EXPECT_EQ(ms.main_address_of(NodeId{100}), NodeId{100});
}

TEST(HnaSet, GatewaysForNetwork) {
  HnaSet hs;
  hs.on_hna(t(0), NodeId{1}, {{0x0A000000u, 8}}, kVtime);
  hs.on_hna(t(0), NodeId{2}, {{0x0A000000u, 8}}, kVtime);
  const auto gws = hs.gateways_for(0x0A000000u, 8);
  EXPECT_EQ(gws.size(), 2u);
  EXPECT_TRUE(hs.gateways_for(0x0B000000u, 8).empty());
  hs.expire(t(7));
  EXPECT_TRUE(hs.gateways_for(0x0A000000u, 8).empty());
}

KnowledgeGraph line_graph(int n) {
  KnowledgeGraph g;
  for (int i = 0; i + 1 < n; ++i)
    g.add_edge(NodeId{static_cast<std::uint32_t>(i)},
               NodeId{static_cast<std::uint32_t>(i + 1)});
  return g;
}

TEST(KnowledgeGraph, CsrCompaction) {
  KnowledgeGraph g;
  g.add_edge(NodeId{3}, NodeId{1});
  g.add_edge(NodeId{1}, NodeId{3});  // duplicate edge compacts away
  g.add_arc(NodeId{1}, NodeId{2});
  EXPECT_EQ(g.nodes(), (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
  EXPECT_EQ(g.arc_count(), 3u);  // 1->3, 3->1, 1->2
  const auto from_1 = g.arcs_from(g.index_of(NodeId{1}));
  ASSERT_EQ(from_1.size(), 2u);
  // Adjacency ascends by target id: n2 before n3.
  EXPECT_EQ(g.id_at(from_1[0]), NodeId{2});
  EXPECT_EQ(g.id_at(from_1[1]), NodeId{3});
  EXPECT_EQ(g.index_of(NodeId{9}), KnowledgeGraph::kNpos);
}

TEST(RoutingTable, LineGraphDistances) {
  RoutingTable rt;
  rt.recompute(NodeId{0}, line_graph(5));
  EXPECT_EQ(rt.size(), 4u);
  for (std::uint32_t d = 1; d <= 4; ++d) {
    const auto e = rt.route_to(NodeId{d});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->distance, static_cast<int>(d));
    EXPECT_EQ(e->next_hop, NodeId{1});  // everything goes through n1
  }
}

TEST(RoutingTable, PathReconstruction) {
  RoutingTable rt;
  rt.recompute(NodeId{0}, line_graph(4));
  const auto path = rt.path_to(NodeId{3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
}

TEST(RoutingTable, UnreachableIsAbsent) {
  KnowledgeGraph g = line_graph(3);
  g.add_edge(NodeId{10}, NodeId{11});  // disconnected island
  RoutingTable rt;
  rt.recompute(NodeId{0}, g);
  EXPECT_FALSE(rt.route_to(NodeId{10}).has_value());
  EXPECT_FALSE(rt.path_to(NodeId{10}).has_value());
}

TEST(RoutingTable, RecomputeReportsDiff) {
  RoutingTable rt;
  auto [added1, removed1] = rt.recompute(NodeId{0}, line_graph(3));
  EXPECT_EQ(added1.size(), 2u);
  EXPECT_TRUE(removed1.empty());
  auto [added2, removed2] = rt.recompute(NodeId{0}, line_graph(2));
  EXPECT_TRUE(added2.empty());
  EXPECT_EQ(removed2.size(), 1u);
}

TEST(RoutingTable, IdenticalGraphIsNoOpDiff) {
  RoutingTable rt;
  rt.recompute(NodeId{0}, line_graph(4));
  auto [added, removed] = rt.recompute(NodeId{0}, line_graph(4));
  EXPECT_TRUE(added.empty());
  EXPECT_TRUE(removed.empty());
  EXPECT_EQ(rt.size(), 3u);
}

TEST(RoutingTable, IncrementalAdditionMatchesFullRebuild) {
  // Growing the line extends reachability; the incremental path must agree
  // with a from-scratch rebuild entry for entry.
  RoutingTable inc;
  inc.recompute(NodeId{0}, line_graph(4));
  auto g = line_graph(4);
  g.add_edge(NodeId{3}, NodeId{4});
  g.add_edge(NodeId{1}, NodeId{5});  // and a fresh branch
  auto [added, removed] = inc.recompute(NodeId{0}, g);
  EXPECT_EQ(added, (std::vector<NodeId>{NodeId{4}, NodeId{5}}));
  EXPECT_TRUE(removed.empty());
  RoutingTable full;
  full.recompute(NodeId{0}, g);
  EXPECT_EQ(inc.entries(), full.entries());
}

TEST(RoutingTable, ShortestPathAvoidsNodes) {
  // Diamond: 0-1-3 and 0-2-3.
  KnowledgeGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{0}, NodeId{2});
  g.add_edge(NodeId{1}, NodeId{3});
  g.add_edge(NodeId{2}, NodeId{3});

  const auto direct = RoutingTable::shortest_path(g, NodeId{0}, NodeId{3});
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->size(), 2u);

  const auto avoiding =
      RoutingTable::shortest_path(g, NodeId{0}, NodeId{3}, {NodeId{1}});
  ASSERT_TRUE(avoiding.has_value());
  EXPECT_EQ(*avoiding, (std::vector<NodeId>{NodeId{2}, NodeId{3}}));

  const auto blocked = RoutingTable::shortest_path(g, NodeId{0}, NodeId{3},
                                                   {NodeId{1}, NodeId{2}});
  EXPECT_FALSE(blocked.has_value());
}

TEST(RoutingTable, AvoidedDestinationStillReachable) {
  // Avoiding X as a relay must not forbid X as the final destination.
  KnowledgeGraph g;
  g.add_edge(NodeId{0}, NodeId{1});
  const auto p =
      RoutingTable::shortest_path(g, NodeId{0}, NodeId{1}, {NodeId{1}});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<NodeId>{NodeId{1}}));
}

TEST(RoutingTable, SelfPathIsEmpty) {
  const auto p =
      RoutingTable::shortest_path(line_graph(3), NodeId{0}, NodeId{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

// ---------------------------------------------------------------------------
// Flat-vs-map equivalence suite: the flat slabs replaced std::map/std::set
// storage; these sweeps replay randomized op streams against straightforward
// reference implementations with the old containers and demand identical
// observable state at every step.

class SlabEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlabEquivalence, LinkSetMatchesMapReference) {
  // Reference: same timer algebra over a std::map (the pre-slab storage).
  struct RefSlot {
    LinkTuple tuple;
    bool was_symmetric = false;
  };
  std::map<NodeId, RefSlot> ref;
  auto ref_on_hello = [&](sim::Time now, NodeId nb, bool lists, bool lost,
                          sim::Duration vtime) {
    auto& s = ref[nb];
    if (!s.tuple.neighbor.valid()) s.tuple.neighbor = nb;
    const bool was_sym =
        s.tuple.valid_until > sim::Time{} && s.tuple.symmetric(now);
    s.tuple.asym_until = now + vtime;
    if (lost) {
      s.tuple.sym_until = now;
    } else if (lists) {
      s.tuple.sym_until = now + vtime;
    }
    s.tuple.valid_until = std::max(s.tuple.asym_until, s.tuple.sym_until);
    const bool is_sym = s.tuple.symmetric(now);
    s.was_symmetric = is_sym;
    if (is_sym && !was_sym) return LinkSet::Change::kBecameSym;
    if (!is_sym && was_sym) return LinkSet::Change::kLost;
    if (!is_sym) return LinkSet::Change::kBecameAsym;
    return LinkSet::Change::kNone;
  };
  auto ref_expire = [&](sim::Time now) {
    std::vector<NodeId> downgraded;
    for (auto it = ref.begin(); it != ref.end();) {
      if (it->second.tuple.valid_until <= now) {
        if (it->second.was_symmetric) downgraded.push_back(it->first);
        it = ref.erase(it);
        continue;
      }
      if (it->second.was_symmetric && !it->second.tuple.symmetric(now)) {
        downgraded.push_back(it->first);
        it->second.was_symmetric = false;
      }
      ++it;
    }
    return downgraded;
  };

  sim::Rng rng{GetParam()};
  LinkSet ls;
  sim::Time now{};
  for (int step = 0; step < 300; ++step) {
    now = now + sim::Duration::from_ms(rng.uniform_int(0, 1500));
    const NodeId nb{static_cast<std::uint32_t>(rng.uniform_int(1, 8))};
    const auto op = rng.uniform_int(0, 9);
    if (op < 7) {
      const bool lists = rng.uniform_int(0, 2) > 0;
      const bool lost = !lists && rng.uniform_int(0, 3) == 0;
      const auto vtime =
          sim::Duration::from_ms(rng.uniform_int(1000, 8000));
      EXPECT_EQ(ls.on_hello(now, nb, lists, lost, vtime),
                ref_on_hello(now, nb, lists, lost, vtime));
    } else {
      EXPECT_EQ(ls.expire(now), ref_expire(now));
    }
    // Observable state must agree after every op.
    ASSERT_EQ(ls.size(), ref.size());
    std::vector<NodeId> ref_sym, ref_asym;
    for (const auto& [id, s] : ref) {
      if (s.tuple.symmetric(now)) ref_sym.push_back(id);
      if (s.tuple.asymmetric(now)) ref_asym.push_back(id);
    }
    ASSERT_EQ(ls.symmetric_neighbors(now), ref_sym);
    ASSERT_EQ(ls.asymmetric_neighbors(now), ref_asym);
  }
}

TEST_P(SlabEquivalence, NeighborTableMatchesMapReference) {
  struct RefNeighbor {
    Willingness will = Willingness::kDefault;
    bool symmetric = false;
  };
  std::map<NodeId, RefNeighbor> ref_nbrs;
  std::map<NodeId, std::map<NodeId, sim::Time>> ref_two_hops;

  sim::Rng rng{GetParam()};
  NeighborTable nt;
  const NodeId self{0};
  sim::Time now{};
  const auto wills = std::vector<Willingness>{
      Willingness::kNever, Willingness::kLow, Willingness::kDefault,
      Willingness::kHigh, Willingness::kAlways};
  for (int step = 0; step < 300; ++step) {
    now = now + sim::Duration::from_ms(rng.uniform_int(0, 800));
    const NodeId nb{static_cast<std::uint32_t>(rng.uniform_int(1, 6))};
    switch (rng.uniform_int(0, 4)) {
      case 0: {
        const auto w = wills[static_cast<std::size_t>(rng.uniform_int(0, 4))];
        const bool sym = rng.uniform_int(0, 1) == 1;
        nt.upsert_neighbor(nb, w, sym);
        ref_nbrs[nb] = RefNeighbor{w, sym};
        break;
      }
      case 1: {
        std::vector<NodeId> ths;
        const int count = static_cast<int>(rng.uniform_int(0, 4));
        for (int i = 0; i < count; ++i)
          ths.push_back(
              NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 12))});
        const auto until = now + sim::Duration::from_ms(rng.uniform_int(500, 5000));
        nt.set_two_hops_via(nb, ths, until);
        ref_two_hops[nb].clear();
        for (auto th : ths) ref_two_hops[nb][th] = until;
        break;
      }
      case 2:
        nt.expire_two_hops(now);
        for (auto& [via, ths] : ref_two_hops)
          for (auto it = ths.begin(); it != ths.end();)
            it = it->second <= now ? ths.erase(it) : std::next(it);
        break;
      case 3:
        // remove_neighbor also drops the neighbor's 2-hop advertisements.
        nt.remove_neighbor(nb);
        ref_nbrs.erase(nb);
        ref_two_hops.erase(nb);
        break;
      case 4:
        nt.drop_two_hops_via(nb);
        ref_two_hops.erase(nb);
        break;
    }

    // strict_two_hops against the reference definition.
    std::set<NodeId> ref_strict;
    for (const auto& [via, ths] : ref_two_hops) {
      const auto n_it = ref_nbrs.find(via);
      if (n_it == ref_nbrs.end() || !n_it->second.symmetric) continue;
      for (const auto& [th, _] : ths) {
        if (th == self) continue;
        const auto th_it = ref_nbrs.find(th);
        if (th_it != ref_nbrs.end() && th_it->second.symmetric) continue;
        ref_strict.insert(th);
      }
    }
    ASSERT_EQ(nt.strict_two_hops(self),
              (std::vector<NodeId>{ref_strict.begin(), ref_strict.end()}));

    // reachability: strict nodes grouped by advertising via, excluding
    // WILL_NEVER and non-symmetric vias, empties omitted.
    NeighborTable::Reachability ref_reach;
    for (const auto& [via, ths] : ref_two_hops) {
      const auto n_it = ref_nbrs.find(via);
      if (n_it == ref_nbrs.end() || !n_it->second.symmetric) continue;
      if (n_it->second.will == Willingness::kNever) continue;
      std::vector<NodeId> strict_via;
      for (const auto& [th, _] : ths)
        if (ref_strict.contains(th)) strict_via.push_back(th);
      if (!strict_via.empty()) ref_reach.emplace_back(via, strict_via);
    }
    ASSERT_EQ(nt.reachability(self), ref_reach);
  }
}

TEST_P(SlabEquivalence, DuplicateSetMatchesFullScanReference) {
  struct RefEntry {
    sim::Time valid_until{};
    bool forwarded = false;
  };
  std::map<std::pair<NodeId, std::uint16_t>, RefEntry> ref;

  sim::Rng rng{GetParam()};
  DuplicateSet ds;
  sim::Time now{};
  // Constant hold time, like the agent's dup_hold: the ring's FIFO order
  // then matches expiry order exactly.
  const auto hold = sim::Duration::from_seconds(3.0);
  for (int step = 0; step < 400; ++step) {
    now = now + sim::Duration::from_ms(rng.uniform_int(0, 900));
    const NodeId orig{static_cast<std::uint32_t>(rng.uniform_int(1, 5))};
    const auto seq = static_cast<std::uint16_t>(rng.uniform_int(0, 15));
    if (rng.uniform_int(0, 4) == 0) {
      ds.expire(now);
      for (auto it = ref.begin(); it != ref.end();)
        it = it->second.valid_until <= now ? ref.erase(it) : std::next(it);
    } else {
      const bool fwd = rng.uniform_int(0, 1) == 1;
      ds.record(now, orig, seq, fwd, hold);
      auto& e = ref[{orig, seq}];
      e.valid_until = now + hold;
      e.forwarded = e.forwarded || fwd;
    }
    for (std::uint32_t o = 1; o <= 5; ++o) {
      for (std::uint16_t s = 0; s < 16; ++s) {
        const auto it = ref.find({NodeId{o}, s});
        ASSERT_EQ(ds.seen(NodeId{o}, s), it != ref.end());
        ASSERT_EQ(ds.forwarded(NodeId{o}, s),
                  it != ref.end() && it->second.forwarded);
      }
    }
  }
}

TEST_P(SlabEquivalence, IncrementalRoutingMatchesFullRebuild) {
  // Evolve one RoutingTable through a random mix of edge additions (the
  // incremental fast path) and removals (full-rebuild fallback); at every
  // step a from-scratch table over the same graph must agree exactly.
  sim::Rng rng{GetParam()};
  const NodeId self{0};
  const std::uint32_t n = 12;
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  auto build = [&] {
    KnowledgeGraph g;
    for (const auto& [a, b] : edges) g.add_edge(NodeId{a}, NodeId{b});
    return g;
  };
  RoutingTable evolving;
  for (int step = 0; step < 60; ++step) {
    const bool remove = !edges.empty() && rng.uniform_int(0, 3) == 0;
    if (remove) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(
                           rng.uniform_int(0, static_cast<int>(edges.size()) - 1)));
      edges.erase(it);
    } else {
      const auto a = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      const auto b = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      if (a == b) continue;
      edges.insert({std::min(a, b), std::max(a, b)});
    }
    const auto g = build();
    const auto [added, removed_dests] = evolving.recompute(self, g);
    RoutingTable fresh;
    fresh.recompute(self, g);
    // Destinations and distances are the contract; the next-hop parent
    // tie-break may differ between the incremental relaxation and a BFS
    // (it is not trace-observable), but must still be a real neighbor.
    auto key_view = [](const RoutingTable& rt) {
      std::vector<std::pair<NodeId, int>> v;
      for (const auto& e : rt.entries()) v.emplace_back(e.dest, e.distance);
      return v;
    };
    ASSERT_EQ(key_view(evolving), key_view(fresh)) << "step " << step;
    const auto entries = evolving.entries();
    const auto self_arcs =
        entries.empty() ? std::span<const std::uint32_t>{}
                        : g.arcs_from(g.index_of(self));
    for (const auto& e : entries) {
      const auto hop_idx = g.index_of(e.next_hop);
      ASSERT_TRUE(e.distance == 1
                      ? e.next_hop == e.dest
                      : std::find(self_arcs.begin(), self_arcs.end(),
                                  hop_idx) != self_arcs.end())
          << "step " << step;
    }
    // The diff must be consistent: every added dest routable, every removed
    // dest not.
    for (auto d : added) ASSERT_TRUE(evolving.route_to(d).has_value());
    for (auto d : removed_dests) ASSERT_FALSE(evolving.route_to(d).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlabEquivalence,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace manet::olsr
