// Unit tests for the simulation kernel: time, rng, event queue, simulator,
// timers.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace manet::sim {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(Time::from_ms(1500).us(), 1'500'000);
  EXPECT_DOUBLE_EQ(Time::from_seconds(2.5).seconds(), 2.5);
  EXPECT_EQ(Time::from_seconds(0.000001).us(), 1);
}

TEST(Time, Arithmetic) {
  const auto a = Time::from_ms(100);
  const auto b = Time::from_ms(250);
  EXPECT_EQ((a + b).us(), 350'000);
  EXPECT_EQ((b - a).us(), 150'000);
  EXPECT_LT(a, b);
  EXPECT_EQ(a + a, Time::from_ms(200));
}

TEST(Time, ToStringFormatsMicroseconds) {
  EXPECT_EQ(Time::from_us(1'234'567).to_string(), "1.234567s");
  EXPECT_EQ(Time{}.to_string(), "0.000000s");
  EXPECT_EQ(Time::from_seconds(42.0).to_string(), "42.000000s");
}

TEST(Time, UserDefinedLiterals) {
  EXPECT_EQ((5_s).us(), 5'000'000);
  EXPECT_EQ((250_ms).us(), 250'000);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng r{13};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdges) {
  Rng r{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng r{19};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r{23};
  double sum = 0.0, sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{31};
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng r{37};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::from_ms(30), [&] { fired.push_back(3); });
  q.schedule(Time::from_ms(10), [&] { fired.push_back(1); });
  q.schedule(Time::from_ms(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    q.schedule(Time::from_ms(10), [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(Time::from_ms(5), [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const auto id = q.schedule(Time::from_ms(5), [] {});
  q.schedule(Time::from_ms(6), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunNextOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueueWindow, MatchesSequentialScheduleOrder) {
  // A coalesced window must be observationally identical to scheduling
  // each event individually: same pop order, ties by add order.
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::from_ms(25), [&] { fired.push_back(25); });
  {
    auto w = q.open_window(Time::from_ms(0));
    w.add(Time::from_ms(30), [&] { fired.push_back(30); });
    w.add(Time::from_ms(10), [&] { fired.push_back(10); });
    w.add(Time::from_ms(10), [&] { fired.push_back(11); });
    w.add(Time::from_ms(20), [&] { fired.push_back(20); });
  }  // destructor closes
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<int>{10, 11, 20, 25, 30}));
}

TEST(EventQueueWindow, RejectsAddBeforeFloor) {
  EventQueue q;
  auto w = q.open_window(Time::from_ms(10));
  EXPECT_THROW(w.add(Time::from_ms(5), [] {}), std::invalid_argument);
}

TEST(EventQueueWindow, GuardsOtherOperationsWhileOpen) {
  // The heap invariant is suspended while a window is open; any other
  // queue operation must fail loudly instead of reordering events.
  EventQueue q;
  q.schedule(Time::from_ms(1), [] {});
  auto w = q.open_window(Time::from_ms(0));
  w.add(Time::from_ms(2), [] {});
  EXPECT_THROW(q.schedule(Time::from_ms(3), [] {}), std::logic_error);
  EXPECT_THROW(q.cancel(EventId{}), std::logic_error);
  EXPECT_THROW(q.empty(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.run_next(), std::logic_error);
  EXPECT_THROW(q.open_window(Time::from_ms(0)), std::logic_error);
  w.close();
  EXPECT_FALSE(q.empty());
  std::size_t ran = 0;
  while (!q.empty()) {
    q.run_next();
    ++ran;
  }
  EXPECT_EQ(ran, 2u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int count = 0;
  q.schedule(Time::from_ms(1), [&] {
    ++count;
    q.schedule(Time::from_ms(2), [&] { ++count; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim{1};
  std::vector<std::int64_t> times;
  sim.schedule(Duration::from_ms(5), [&] { times.push_back(sim.now().us()); });
  sim.schedule(Duration::from_ms(10), [&] { times.push_back(sim.now().us()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<std::int64_t>{5'000, 10'000}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim{1};
  int fired = 0;
  sim.schedule(Duration::from_ms(5), [&] { ++fired; });
  sim.schedule(Duration::from_ms(50), [&] { ++fired; });
  sim.run_until(Time::from_ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::from_ms(10));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim{1};
  EXPECT_THROW(sim.schedule(Duration::from_ms(-1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim{1};
  sim.schedule(Duration::from_ms(10), [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(Time::from_ms(5), [] {}),
               std::invalid_argument);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim{1};
  int fired = 0;
  sim.schedule(Duration::from_ms(1), [&] { ++fired; });
  sim.schedule(Duration::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTimer, FiresAtPeriodWithoutJitter) {
  Simulator sim{1};
  std::vector<std::int64_t> at;
  PeriodicTimer t{sim, Duration::from_ms(100), Duration{},
                  [&] { at.push_back(sim.now().us()); }};
  t.start();
  sim.run_until(Time::from_ms(350));
  t.stop();
  EXPECT_EQ(at, (std::vector<std::int64_t>{100'000, 200'000, 300'000}));
}

TEST(PeriodicTimer, JitterStaysWithinBounds) {
  Simulator sim{99};
  std::vector<std::int64_t> at;
  PeriodicTimer t{sim, Duration::from_ms(100), Duration::from_ms(30),
                  [&] { at.push_back(sim.now().us()); }};
  t.start();
  sim.run_until(Time::from_seconds(10.0));
  t.stop();
  ASSERT_GT(at.size(), 50u);
  for (std::size_t i = 1; i < at.size(); ++i) {
    const auto gap = at[i] - at[i - 1];
    EXPECT_GE(gap, 70'000);
    EXPECT_LE(gap, 100'000);
  }
}

TEST(PeriodicTimer, StopCancelsFutureFirings) {
  Simulator sim{1};
  int fired = 0;
  PeriodicTimer t{sim, Duration::from_ms(10), Duration{}, [&] { ++fired; }};
  t.start();
  sim.run_until(Time::from_ms(25));
  t.stop();
  sim.run_until(Time::from_ms(100));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimer, InvalidConfigThrows) {
  Simulator sim{1};
  EXPECT_THROW(PeriodicTimer(sim, Duration{}, Duration{}, [] {}),
               std::invalid_argument);
  EXPECT_THROW(
      PeriodicTimer(sim, Duration::from_ms(5), Duration::from_ms(5), [] {}),
      std::invalid_argument);
}

TEST(OneShotTimer, FiresOnce) {
  Simulator sim{1};
  int fired = 0;
  OneShotTimer t{sim};
  t.arm(Duration::from_ms(10), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  sim.run_until(Time::from_ms(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(OneShotTimer, CancelAndRearm) {
  Simulator sim{1};
  int fired = 0;
  OneShotTimer t{sim};
  t.arm(Duration::from_ms(10), [&] { fired = 1; });
  t.cancel();
  t.arm(Duration::from_ms(20), [&] { fired = 2; });
  sim.run_until(Time::from_ms(50));
  EXPECT_EQ(fired, 2);
}

// Property sweep: a run is reproducible — same seed, same event trace.
class SimDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDeterminism, IdenticalTraces) {
  auto run = [&](std::uint64_t seed) {
    Simulator sim{seed};
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(Duration::from_us(sim.rng().uniform_int(1, 1'000'000)),
                   [&trace, &sim] { trace.push_back(sim.now().us()); });
    }
    sim.run_all();
    return trace;
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism,
                         ::testing::Values(1, 2, 3, 42, 1337, 0xDEAD));

}  // namespace
}  // namespace manet::sim
