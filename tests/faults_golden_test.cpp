// Golden-trace regression for faulted runs: a fixed-seed 16-node chaos
// sweep must reproduce the committed graceful-degradation CSV byte for
// byte, on any worker thread count. This pins the fault subsystem end to
// end — chaos plan derivation, injector replay, drop-on-arrival, the
// liveness-gated detector, degradation metrics and CSV formatting.
//
// Regenerate the fixture only for an intentional trace change, with the
// command in tests/fixtures/README.md.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"
#include "scenario/trust_experiment.hpp"

namespace {

using namespace manet;

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The exact spec the fixture was recorded with (the CLI `--sweep chaos`
/// preset, shrunk). Keep in sync with tests/fixtures/README.md.
runtime::ExperimentSpec golden_chaos_spec() {
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(2024, 3);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.25};
  spec.rounds = 8;
  spec.chaos = true;
  return spec;
}

std::string degradation_csv_for(const runtime::ExperimentSpec& spec,
                                unsigned threads) {
  runtime::Runner::Config rc;
  rc.threads = threads;
  runtime::Runner runner{rc};
  const auto results = runner.run(spec);
  const runtime::Aggregator aggregator{0.95};
  return runtime::Aggregator::degradation_csv(aggregator.degradation(results));
}

std::string fixture_path() {
  return std::string{MANET_FIXTURE_DIR} + "/golden_degradation_16node_chaos.csv";
}

TEST(FaultsGolden, ChaosDegradationCsvMatchesFixture) {
  const auto expected = read_file(fixture_path());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(degradation_csv_for(golden_chaos_spec(), 1), expected)
      << "chaos degradation trace diverged from the committed fixture; if "
         "this change is intentionally trace-altering, regenerate per "
         "tests/fixtures/README.md";
}

TEST(FaultsGolden, WorkerThreadCountDoesNotChangeTheChaosTrace) {
  const auto expected = read_file(fixture_path());
  EXPECT_EQ(degradation_csv_for(golden_chaos_spec(), 4), expected);
}

// The churn fixture above pins three seeds; the determinism contract is
// per-seed, so sweep a wide seed range and require byte equality between
// a serial and a 4-worker run — both the aggregate and the degradation
// tables, which together cover every per-replication metric.
TEST(FaultsGolden, FiftySeedFaultedSweepIsThreadInvariant) {
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(7, 50);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.25};
  spec.rounds = 4;
  spec.chaos = true;

  auto run_with = [&](unsigned threads) {
    runtime::Runner::Config rc;
    rc.threads = threads;
    runtime::Runner runner{rc};
    const auto results = runner.run(spec);
    const runtime::Aggregator aggregator{0.95};
    return runtime::Aggregator::to_csv(aggregator.aggregate(results)) +
           runtime::Aggregator::degradation_csv(aggregator.degradation(results));
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

// The psim sharded engine steps fault events at quiescent 250 ms window
// barriers, so a faulted sharded run must be byte-identical for any
// engine thread count — the intra-replication determinism contract.
TEST(FaultsGolden, ShardedFaultedRunIsEngineThreadInvariant) {
  auto run_with = [](unsigned engine_threads) {
    scenario::TrustExperiment::Config cfg;
    cfg.seed = 2024;
    cfg.num_nodes = 16;
    cfg.num_liars = 4;
    cfg.engine = sim::EngineKind::kSharded;
    cfg.engine_threads = engine_threads;
    cfg.shards = 4;
    cfg.fault_plan = faults::FaultPlan::chaos(
        2024, 16, 200.0, sim::Time::from_seconds(20.0),
        sim::Time::from_seconds(60.0));
    scenario::TrustExperiment exp{cfg};
    exp.setup();
    std::ostringstream out;
    out.precision(17);  // full doubles: equality means bit-equal state
    for (int r = 0; r < 8; ++r) {
      const auto s = exp.run_churn_round();
      out << s.round << ' ' << s.at.us() << ' ' << s.detect << ' '
          << static_cast<int>(s.verdict) << ' ' << s.down << ' '
          << s.suppressed << ' ' << s.false_convictions << ' '
          << static_cast<int>(s.converged);
      for (const auto& [id, t] : s.trust) out << ' ' << t;
      out << '\n';
    }
    return out.str();
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

}  // namespace
