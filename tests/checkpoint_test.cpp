// Checkpoint/restore of the full experiment state: the writer/reader
// primitives, the error paths of the versioned binary format, and the
// headline contract — save at a round boundary, restore into a fresh
// process image, continue, and every subsequent round is byte-identical
// to the run that never stopped. Exercised at early, middle and final
// save points, both pristine and mid-fault-plan.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "faults/checkpoint.hpp"
#include "faults/fault_plan.hpp"
#include "scenario/trust_experiment.hpp"

namespace manet {
namespace {

using faults::CheckpointError;
using faults::CheckpointReader;
using faults::CheckpointWriter;
using scenario::TrustExperiment;

// --- writer/reader primitives --------------------------------------------

TEST(CheckpointWire, PrimitivesRoundTrip) {
  CheckpointWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.125);
  w.boolean(true);
  w.time(sim::Time::from_ms(1250));
  w.node(net::NodeId{7});
  w.count(3);
  w.str("hello");
  // blob() is written as count + raw bytes (the writer half is raw so
  // containers can prefix their own element counts); the reader half is
  // length-prefixed.
  const std::vector<std::uint8_t> blob{9, 8, 7};
  w.count(blob.size());
  w.blob(blob.data(), blob.size());

  const auto bytes = w.take();
  CheckpointReader r{bytes};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -0.125);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.time().us(), sim::Time::from_ms(1250).us());
  EXPECT_EQ(r.node(), net::NodeId{7});
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(CheckpointWire, TruncationThrowsInsteadOfReadingPastTheEnd) {
  CheckpointWriter w;
  w.u32(123);
  auto bytes = w.take();
  bytes.pop_back();
  CheckpointReader r{bytes};
  EXPECT_THROW(r.u32(), CheckpointError);
}

TEST(CheckpointWire, CountIsBoundedByRemainingBytes) {
  // A corrupt length prefix larger than the remaining payload must throw
  // at the count read, not allocate or scan gigabytes.
  CheckpointWriter w;
  w.count(1u << 30);
  const auto bytes = w.take();
  CheckpointReader r{bytes};
  EXPECT_THROW(r.count(), CheckpointError);
}

// --- full save/restore round trip ----------------------------------------

TrustExperiment::Config checkpoint_config(bool faulted) {
  TrustExperiment::Config c;
  c.seed = 29;
  c.num_nodes = 16;
  c.num_liars = 4;
  c.checkpointable = true;
  if (faulted) {
    // The plan straddles every save point: node 6 is down across the
    // mid-run checkpoint, so the snapshot must carry a mid-fault world
    // (down host, injector timeline, liveness-gated detector).
    c.fault_plan = faults::FaultPlan::parse(
        "20000 crash n6\n"
        "24000 brownout 0 0 120 120 0.6\n"
        "31000 brownout_clear 0 0 120 120\n"
        "35000 restart n6\n");
  }
  return c;
}

/// Full-precision fingerprint of one round: every field that reaches any
/// CSV, so "fingerprints equal" == "per-round output byte-identical".
std::string fingerprint(const TrustExperiment::RoundSnapshot& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "r%d at=%lld d=%.17g m=%.17g v=%d %zu/%llu/%llu/%d",
                s.round, static_cast<long long>(s.at.us()), s.detect, s.margin,
                static_cast<int>(s.verdict), s.down,
                static_cast<unsigned long long>(s.suppressed),
                static_cast<unsigned long long>(s.false_convictions),
                static_cast<int>(s.converged));
  std::string out = buf;
  for (const auto& [id, t] : s.trust) {
    std::snprintf(buf, sizeof(buf), " %s=%.17g", id.to_string().c_str(), t);
    out += buf;
  }
  return out;
}

void expect_round_trip_at(int save_round, bool faulted) {
  const int total_rounds = 6;
  const auto config = checkpoint_config(faulted);
  auto run_round = [faulted](TrustExperiment& e) {
    return faulted ? e.run_churn_round() : e.run_round();
  };

  // The reference run never stops.
  TrustExperiment reference{config};
  reference.setup();
  std::vector<std::string> expected;
  for (int r = 0; r < total_rounds; ++r) {
    const auto snap = run_round(reference);
    if (r >= save_round) expected.push_back(fingerprint(snap));
  }

  // The checkpointed run saves at `save_round`, restores into a fresh
  // object graph, and continues.
  TrustExperiment original{config};
  original.setup();
  for (int r = 0; r < save_round; ++r) run_round(original);
  const auto bytes = original.save_checkpoint();
  ASSERT_FALSE(bytes.empty());

  const auto restored = TrustExperiment::restore_checkpoint(config, bytes);
  std::vector<std::string> actual;
  for (int r = save_round; r < total_rounds; ++r)
    actual.push_back(fingerprint(run_round(*restored)));

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "post-restore round " << i;
}

class CheckpointRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointRoundTrip, PristineRunContinuesByteIdentically) {
  expect_round_trip_at(GetParam(), /*faulted=*/false);
}

TEST_P(CheckpointRoundTrip, FaultedRunContinuesByteIdentically) {
  expect_round_trip_at(GetParam(), /*faulted=*/true);
}

// Save points: after the first round, mid-run (mid-fault-plan for the
// faulted variant), and after the last round.
INSTANTIATE_TEST_SUITE_P(SavePoints, CheckpointRoundTrip,
                         ::testing::Values(1, 3, 6));

// A restored experiment is itself checkpointable again (checkpoint of a
// checkpoint), and the chain still matches the uninterrupted run.
TEST(Checkpoint, ChainedCheckpointsStillMatch) {
  const auto config = checkpoint_config(/*faulted=*/true);

  TrustExperiment reference{config};
  reference.setup();
  std::string expected;
  for (int r = 0; r < 5; ++r) expected = fingerprint(reference.run_churn_round());

  TrustExperiment first{config};
  first.setup();
  first.run_churn_round();
  const auto bytes1 = first.save_checkpoint();
  auto second = TrustExperiment::restore_checkpoint(config, bytes1);
  second->run_churn_round();
  second->run_churn_round();
  const auto bytes2 = second->save_checkpoint();
  auto third = TrustExperiment::restore_checkpoint(config, bytes2);
  std::string actual;
  for (int r = 3; r < 5; ++r) actual = fingerprint(third->run_churn_round());

  EXPECT_EQ(actual, expected);
}

// --- preconditions and error paths ---------------------------------------

TEST(Checkpoint, SaveRequiresCheckpointableMode) {
  auto config = checkpoint_config(false);
  config.checkpointable = false;
  TrustExperiment exp{config};
  exp.setup();
  EXPECT_THROW(exp.save_checkpoint(), std::logic_error);
}

TEST(Checkpoint, RestoreRejectsCorruptMagic) {
  const auto config = checkpoint_config(false);
  TrustExperiment exp{config};
  exp.setup();
  exp.run_round();
  auto bytes = exp.save_checkpoint();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(TrustExperiment::restore_checkpoint(config, bytes),
               CheckpointError);
}

TEST(Checkpoint, RestoreRejectsFutureVersion) {
  const auto config = checkpoint_config(false);
  TrustExperiment exp{config};
  exp.setup();
  exp.run_round();
  auto bytes = exp.save_checkpoint();
  bytes[4] += 1;  // version field, little-endian low byte
  EXPECT_THROW(TrustExperiment::restore_checkpoint(config, bytes),
               CheckpointError);
}

TEST(Checkpoint, RestoreRejectsConfigMismatch) {
  const auto config = checkpoint_config(false);
  TrustExperiment exp{config};
  exp.setup();
  exp.run_round();
  const auto bytes = exp.save_checkpoint();

  auto wrong_nodes = config;
  wrong_nodes.num_nodes = 12;
  EXPECT_THROW(TrustExperiment::restore_checkpoint(wrong_nodes, bytes),
               CheckpointError);

  auto wrong_seed = config;
  wrong_seed.seed = 30;
  EXPECT_THROW(TrustExperiment::restore_checkpoint(wrong_seed, bytes),
               CheckpointError);

  // A pristine config cannot restore a faulted snapshot (injector
  // presence mismatch) and vice versa.
  auto faulted_cfg = checkpoint_config(true);
  TrustExperiment faulted_exp{faulted_cfg};
  faulted_exp.setup();
  faulted_exp.run_churn_round();
  const auto faulted_bytes = faulted_exp.save_checkpoint();
  auto pristine_cfg = checkpoint_config(false);
  pristine_cfg.seed = faulted_cfg.seed;
  EXPECT_THROW(TrustExperiment::restore_checkpoint(pristine_cfg, faulted_bytes),
               CheckpointError);
}

TEST(Checkpoint, RestoreRejectsTruncationAndTrailingGarbage) {
  const auto config = checkpoint_config(false);
  TrustExperiment exp{config};
  exp.setup();
  exp.run_round();
  auto bytes = exp.save_checkpoint();

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(TrustExperiment::restore_checkpoint(config, truncated),
               CheckpointError);

  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(TrustExperiment::restore_checkpoint(config, padded),
               CheckpointError);
}

}  // namespace
}  // namespace manet
