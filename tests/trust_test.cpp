// Unit tests for the trust system: Eq. 5 updates, forgetting/idle
// relaxation, entropy-based recommendation trust, propagation (Eq. 6-7),
// trusted aggregation (Eq. 8) and the confidence-gated decision (Eq. 9-10).

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "trust/detection.hpp"
#include "trust/propagation.hpp"
#include "trust/trust_store.hpp"

namespace manet::trust {
namespace {

NodeId n(std::uint32_t v) { return NodeId{v}; }

TEST(TrustStore, UnknownSubjectGetsDefault) {
  TrustStore store;
  EXPECT_DOUBLE_EQ(store.trust(n(1)), 0.4);
  EXPECT_FALSE(store.known(n(1)));
}

TEST(TrustStore, SetTrustClamps) {
  TrustStore store;
  store.set_trust(n(1), 5.0);
  EXPECT_DOUBLE_EQ(store.trust(n(1)), 1.0);
  store.set_trust(n(1), -5.0);
  EXPECT_DOUBLE_EQ(store.trust(n(1)), 0.0);
}

TEST(TrustStore, InvalidParamsThrow) {
  TrustParams bad;
  bad.min_trust = 1.0;
  bad.max_trust = 0.0;
  EXPECT_THROW(TrustStore{bad}, std::invalid_argument);
  TrustParams bad2;
  bad2.forgetting = 1.5;
  EXPECT_THROW(TrustStore{bad2}, std::invalid_argument);
}

TEST(TrustStore, Equation5BeneficialAndHarmful) {
  TrustParams p;
  p.forgetting = 0.9;
  TrustStore store{p};
  store.set_trust(n(1), 0.5);
  // T = alpha*e + beta*T = 0.05*1 + 0.9*0.5 = 0.5
  store.apply_evidence(n(1), Evidence{+1.0, 0.05, true, "good"});
  EXPECT_NEAR(store.trust(n(1)), 0.5, 1e-12);
  // T = 0.3*(-1) + 0.9*0.5 = 0.15
  store.apply_evidence(n(1), Evidence{-1.0, 0.30, true, "bad"});
  EXPECT_NEAR(store.trust(n(1)), 0.15, 1e-12);
}

TEST(TrustStore, Equation5MultipleEvidencesSum) {
  TrustParams p;
  p.forgetting = 0.8;
  TrustStore store{p};
  store.set_trust(n(1), 0.5);
  const std::vector<Evidence> evs{{+1.0, 0.1, true, "a"},
                                  {-1.0, 0.2, true, "b"},
                                  {+1.0, 0.05, false, "c"}};
  // sum = 0.1 - 0.2 + 0.05 = -0.05; T = -0.05 + 0.8*0.5 = 0.35
  store.apply_evidence(n(1), evs);
  EXPECT_NEAR(store.trust(n(1)), 0.35, 1e-12);
}

TEST(TrustStore, LiarTrustCollapsesRegardlessOfInitialValue) {
  // The paper's Fig. 1 property: the trust of a liar decreases largely
  // regardless of its initial trust value.
  for (double initial : {0.2, 0.5, 0.8}) {
    TrustStore store;
    store.set_trust(n(1), initial);
    for (int round = 0; round < 10; ++round)
      store.apply_evidence(n(1), lie_evidence(store.params().gravity_lie));
    EXPECT_LT(store.trust(n(1)), 0.05) << "initial=" << initial;
  }
}

TEST(TrustStore, HonestNodeGainsOnlyALittle) {
  // Fig. 1: honest nodes with low initial trust gain slowly over 25 rounds.
  TrustStore store;
  store.set_trust(n(1), 0.2);
  for (int round = 0; round < 25; ++round)
    store.apply_evidence(n(1),
                         honest_answer_evidence(store.params().reward_honest));
  EXPECT_GT(store.trust(n(1)), 0.3);
  EXPECT_LT(store.trust(n(1)), 0.55);  // bounded by alpha/(1-beta) = 0.5
}

TEST(TrustStore, IdleRelaxationTowardDefaultFromAbove) {
  TrustStore store;
  store.set_trust(n(1), 0.8);
  for (int i = 0; i < 40; ++i) store.decay_idle(n(1));
  EXPECT_NEAR(store.trust(n(1)), 0.4, 0.01);
}

TEST(TrustStore, IdleRecoveryFromBelowIsSlower) {
  // Fig. 2's defensive asymmetry: a former liar (trust near 0) recovers
  // much more slowly than a good node decays from above.
  TrustStore store;
  store.set_trust(n(1), 0.0);  // former liar
  store.set_trust(n(2), 0.8);  // reputable node
  const int rounds = 25;
  for (int i = 0; i < rounds; ++i) store.decay_all_idle();
  EXPECT_NEAR(store.trust(n(2)), 0.4, 0.01);  // reached default
  EXPECT_LT(store.trust(n(1)), 0.35);         // still below default
  EXPECT_GT(store.trust(n(1)), 0.1);          // but recovering
}

TEST(TrustStore, RecommendationTrustNeutralWithoutHistory) {
  TrustStore store;
  EXPECT_DOUBLE_EQ(store.recommendation_trust(n(1)), 0.0);
}

TEST(TrustStore, RecommendationTrustGrowsWithConsistency) {
  TrustStore store;
  for (int i = 0; i < 20; ++i) store.record_interaction(n(1), true);
  for (int i = 0; i < 20; ++i) store.record_interaction(n(2), false);
  EXPECT_GT(store.recommendation_trust(n(1)), 0.5);
  EXPECT_LT(store.recommendation_trust(n(2)), -0.5);
  // Mixed history stays near maximal uncertainty.
  for (int i = 0; i < 10; ++i) {
    store.record_interaction(n(3), i % 2 == 0);
  }
  EXPECT_NEAR(store.recommendation_trust(n(3)), 0.0, 0.1);
}

TEST(Propagation, ConcatenatedNeverAmplifies) {
  // Eq. 6: trust through a third party is bounded by both links.
  EXPECT_DOUBLE_EQ(concatenated_trust(0.5, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(concatenated_trust(1.0, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(concatenated_trust(0.0, 0.9), 0.0);
  for (double r : {0.2, 0.6, 0.9}) {
    for (double t : {-0.8, 0.3, 1.0}) {
      EXPECT_LE(std::abs(concatenated_trust(r, t)), std::abs(t));
      EXPECT_LE(std::abs(concatenated_trust(r, t)), std::abs(r));
    }
  }
}

TEST(Propagation, MultipathWeightsByRecommendation) {
  // Eq. 7: w_i = 1/sum(R); a highly recommended path dominates.
  std::vector<RecommendationPath> paths{
      {n(1), 0.9, +1.0},
      {n(2), 0.1, -1.0},
  };
  const double t = multipath_trust(paths);
  EXPECT_NEAR(t, (0.9 * 1.0 + 0.1 * -1.0) / 1.0, 1e-12);
  EXPECT_GT(t, 0.0);
}

TEST(Propagation, MultipathDegenerateCases) {
  EXPECT_DOUBLE_EQ(multipath_trust({}), 0.0);
  std::vector<RecommendationPath> untrusted{{n(1), -0.5, 1.0},
                                            {n(2), 0.2, 1.0}};
  // Recommendation sum <= 0: no usable information.
  EXPECT_DOUBLE_EQ(multipath_trust(untrusted), 0.0);
}

TEST(Propagation, ChainedTrustMonotoneShrink) {
  const std::vector<double> chain{0.9, 0.8, 0.7};
  EXPECT_NEAR(chained_trust(chain), 0.9 * 0.8 * 0.7, 1e-12);
}

TEST(Detection, Equation8WeightedAggregate) {
  std::vector<WeightedAnswer> answers{
      {n(1), 0.5, -1.0},
      {n(2), 0.5, -1.0},
      {n(3), 0.5, +1.0},
  };
  // (0.5*-1 + 0.5*-1 + 0.5*1) / 1.5 = -1/3
  EXPECT_NEAR(aggregate_detection(answers), -1.0 / 3.0, 1e-12);
}

TEST(Detection, Equation8LiarsWithZeroTrustHaveNoInfluence) {
  // The paper's convergence argument: once liars' trust hits bottom their
  // answers stop influencing the investigation.
  std::vector<WeightedAnswer> answers{
      {n(1), 0.5, -1.0},
      {n(2), 0.0, +1.0},  // liar, fully distrusted
  };
  EXPECT_NEAR(aggregate_detection(answers), -1.0, 1e-12);
}

TEST(Detection, Equation8EmptyOrUntrustedIsZero) {
  EXPECT_DOUBLE_EQ(aggregate_detection({}), 0.0);
  std::vector<WeightedAnswer> all_zero{{n(1), 0.0, 1.0}};
  EXPECT_DOUBLE_EQ(aggregate_detection(all_zero), 0.0);
}

TEST(Detection, NoAnswerCountsAsZeroEvidence) {
  // e=0 answers dilute the aggregate but never flip its sign.
  std::vector<WeightedAnswer> answers{
      {n(1), 0.4, -1.0},
      {n(2), 0.4, 0.0},
      {n(3), 0.4, 0.0},
  };
  EXPECT_NEAR(aggregate_detection(answers), -1.0 / 3.0, 1e-12);
}

DecisionConfig cfg(double gamma = 0.6, double cl = 0.95, bool use_ci = true) {
  DecisionConfig c;
  c.gamma = gamma;
  c.confidence_level = cl;
  c.use_confidence_interval = use_ci;
  return c;
}

std::vector<WeightedAnswer> unanimous(int count, double evidence,
                                      double trust = 0.5) {
  std::vector<WeightedAnswer> out;
  for (int i = 0; i < count; ++i)
    out.push_back({n(static_cast<std::uint32_t>(i)), trust, evidence});
  return out;
}

TEST(Decision, UnanimousDenialConvictsWithEnoughSamples) {
  const auto d = decide(unanimous(30, -1.0), cfg());
  EXPECT_EQ(d.verdict, Verdict::kIntruder);
  EXPECT_NEAR(d.detect, -1.0, 1e-12);
  EXPECT_NEAR(d.interval.margin, 0.0, 1e-9);  // zero spread
}

TEST(Decision, UnanimousConfirmationExonerates) {
  const auto d = decide(unanimous(30, +1.0), cfg());
  EXPECT_EQ(d.verdict, Verdict::kWellBehaving);
}

TEST(Decision, FewSamplesStayUnrecognized) {
  // One sample: unknown spread -> maximal margin -> must not convict.
  const auto d = decide(unanimous(1, -1.0), cfg());
  EXPECT_EQ(d.verdict, Verdict::kUnrecognized);
}

TEST(Decision, MixedAnswersWideMarginUnrecognized) {
  std::vector<WeightedAnswer> answers;
  for (int i = 0; i < 6; ++i)
    answers.push_back({n(static_cast<std::uint32_t>(i)), 0.5,
                       i % 2 == 0 ? -1.0 : 1.0});
  const auto d = decide(answers, cfg());
  EXPECT_EQ(d.verdict, Verdict::kUnrecognized);
}

TEST(Decision, DisablingConfidenceIntervalIsLessCautious) {
  // 8 samples leaning negative: with the CI gate the margin blocks the
  // verdict; without it, plain thresholding convicts. This is the paper's
  // motivation for the indicator (ablation Table D).
  std::vector<WeightedAnswer> answers;
  for (int i = 0; i < 7; ++i)
    answers.push_back({n(static_cast<std::uint32_t>(i)), 0.5, -1.0});
  answers.push_back({n(7), 0.5, +1.0});
  const auto gated = decide(answers, cfg());
  const auto ungated = decide(answers, cfg(0.6, 0.95, false));
  EXPECT_EQ(gated.verdict, Verdict::kUnrecognized);
  EXPECT_EQ(ungated.verdict, Verdict::kIntruder);
}

TEST(Decision, HigherConfidenceLevelNeedsMoreEvidence) {
  std::vector<WeightedAnswer> answers;
  for (int i = 0; i < 20; ++i)
    answers.push_back({n(static_cast<std::uint32_t>(i)), 0.5,
                       i < 19 ? -1.0 : 1.0});
  const auto relaxed = decide(answers, cfg(0.6, 0.90));
  const auto strict = decide(answers, cfg(0.6, 0.9999));
  EXPECT_EQ(relaxed.verdict, Verdict::kIntruder);
  EXPECT_EQ(strict.verdict, Verdict::kUnrecognized);
}

TEST(Decision, VerdictToString) {
  EXPECT_EQ(to_string(Verdict::kIntruder), "intruder");
  EXPECT_EQ(to_string(Verdict::kWellBehaving), "well-behaving");
  EXPECT_EQ(to_string(Verdict::kUnrecognized), "unrecognized");
}

// Property: the decision respects gamma symmetry — flipping every evidence
// sign flips intruder <-> well-behaving.
class DecisionSymmetry : public ::testing::TestWithParam<int> {};

TEST_P(DecisionSymmetry, FlippingEvidenceFlipsVerdict) {
  std::vector<WeightedAnswer> neg, pos;
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int i = 0; i < 20; ++i) {
    const double e = rng.bernoulli(0.9) ? -1.0 : 1.0;
    const double t = rng.uniform_real(0.2, 0.9);
    neg.push_back({n(static_cast<std::uint32_t>(i)), t, e});
    pos.push_back({n(static_cast<std::uint32_t>(i)), t, -e});
  }
  const auto dn = decide(neg, cfg());
  const auto dp = decide(pos, cfg());
  EXPECT_NEAR(dn.detect, -dp.detect, 1e-12);
  if (dn.verdict == Verdict::kIntruder) {
    EXPECT_EQ(dp.verdict, Verdict::kWellBehaving);
  }
  if (dn.verdict == Verdict::kWellBehaving) {
    EXPECT_EQ(dp.verdict, Verdict::kIntruder);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionSymmetry, ::testing::Range(1, 15));

}  // namespace
}  // namespace manet::trust
