// Tests for the cooperative investigation (Algorithm 1): protocol codec,
// honest observations, answer policies, suspect-avoiding routing, timeouts
// and retries.

#include <gtest/gtest.h>

#include "attacks/drop.hpp"
#include "attacks/link_spoofing.hpp"
#include "core/investigation.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

namespace manet::core {
namespace {

using scenario::Network;

TEST(InvestigationCodec, QueryRoundTrip) {
  LinkQuery q;
  q.investigation_id = 12345;
  q.kind = QueryKind::kLinkStatus;
  q.suspect = NodeId{7};
  q.subject = NodeId{9};
  q.claimed_up = true;
  const auto decoded = decode_query(encode_query(q));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->investigation_id, q.investigation_id);
  EXPECT_EQ(decoded->suspect, q.suspect);
  EXPECT_EQ(decoded->subject, q.subject);
  EXPECT_EQ(decoded->claimed_up, true);
  EXPECT_TRUE(is_query(encode_query(q)));
}

TEST(InvestigationCodec, AnswerRoundTrip) {
  for (double e : {-1.0, 0.0, 1.0}) {
    LinkAnswer a;
    a.investigation_id = 55;
    a.responder = NodeId{3};
    a.suspect = NodeId{7};
    a.subject = NodeId{9};
    a.evidence = e;
    const auto decoded = decode_answer(encode_answer(a));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->evidence, e);
    EXPECT_EQ(decoded->responder, a.responder);
    EXPECT_FALSE(is_query(encode_answer(a)));
  }
}

TEST(InvestigationCodec, MalformedRejected) {
  EXPECT_FALSE(decode_query({}).has_value());
  EXPECT_FALSE(decode_answer({}).has_value());
  EXPECT_FALSE(decode_query({1, 2, 3}).has_value());
  auto bytes = encode_query(LinkQuery{});
  bytes[1] = 99;  // invalid kind
  EXPECT_FALSE(decode_query(bytes).has_value());
}

Network::Config cluster_config(std::size_t n, std::uint64_t seed = 1) {
  // Dense cluster: everybody in range of everybody.
  Network::Config c;
  c.seed = seed;
  c.radio.range_m = 400.0;
  c.positions = net::grid_layout(n, 50.0);
  return c;
}

TEST(Investigation, HonestRoundCollectsDenialsForPhantom) {
  Network net{cluster_config(6)};
  const NodeId phantom{90};
  net.set_hooks(1, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = phantom;
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(
      q, {Network::id_of(2), Network::id_of(3), Network::id_of(4)},
      [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(10.0));

  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 3u);
  for (const auto& a : result->answers) {
    EXPECT_TRUE(a.answered);
    EXPECT_EQ(a.evidence, -1.0) << a.responder.to_string();
  }
}

TEST(Investigation, SubjectAnswersFirstHand) {
  // When the queried node IS the claimed far end, it answers from its own
  // link set: a real link is confirmed.
  Network net{cluster_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(2);  // genuine neighbor of n1
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(2)},
                                    [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(6.0));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0].evidence, +1.0);
}

TEST(Investigation, LiarInvertsAnswer) {
  Network net{cluster_config(5)};
  const NodeId phantom{90};
  net.set_hooks(1, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  net.set_answer_policy(2, AnswerPolicy::kLiar);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = phantom;
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(
      q, {Network::id_of(2), Network::id_of(3)},
      [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(6.0));
  ASSERT_TRUE(result.has_value());
  double liar_evidence = 0, honest_evidence = 0;
  for (const auto& a : result->answers) {
    if (a.responder == Network::id_of(2)) liar_evidence = a.evidence;
    if (a.responder == Network::id_of(3)) honest_evidence = a.evidence;
  }
  EXPECT_EQ(honest_evidence, -1.0);
  EXPECT_EQ(liar_evidence, +1.0);  // vouches for the attacker
}

TEST(Investigation, SilentVerifierTimesOutWithZeroEvidence) {
  Network net{cluster_config(4)};
  net.set_answer_policy(2, AnswerPolicy::kSilent);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(3);
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(2)},
                                    [&](const RoundResult& r) { result = r; });
  // Needs timeout * (1 + retries) of simulated time.
  net.run_for(sim::Duration::from_seconds(15.0));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_FALSE(result->answers[0].answered);
  EXPECT_EQ(result->answers[0].evidence, 0.0);
  EXPECT_EQ(result->timeouts, 1u);
}

TEST(Investigation, RequestsAvoidTheSuspectAsRelay) {
  // Chain n0-n1-n2: the only path to n2 goes through suspect n1, so the
  // investigation cannot reach the verifier and must time out — the
  // paper's E3 (sole connectivity provider) situation.
  Network::Config c;
  c.radio.range_m = 120.0;
  c.positions = net::chain_layout(3, 100.0);
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(15.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(2);
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(2)},
                                    [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(15.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->timeouts, 1u);
  EXPECT_GT(net.investigations(0).stats().route_failures, 0u);
  // The suspect never relayed an investigation DATA message.
  EXPECT_EQ(net.agent(1).stats().data_relayed, 0u);
}

TEST(Investigation, DetourAroundSuspectDelivers) {
  // Diamond n0-n1-n3 / n0-n2-n3: suspect n1 is avoided, query reaches n3
  // via n2 and the answer comes back.
  Network::Config c;
  c.radio.range_m = 120.0;
  c.positions = {{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(15.0));

  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(3);
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(3)},
                                    [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(8.0));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_TRUE(result->answers[0].answered);
  EXPECT_EQ(result->answers[0].evidence, +1.0);  // n1-n3 is a real link
  EXPECT_EQ(net.agent(1).stats().data_relayed, 0u);
  EXPECT_GE(net.agent(2).stats().data_relayed, 1u);
}

TEST(Investigation, RetryRecoversFromDroppedQuery) {
  // Diamond where BOTH relays are available but the first-choice relay
  // blackholes data: the retry grows the avoid set and succeeds via the
  // other relay (Algorithm 1's sequential fallback).
  Network::Config c;
  c.radio.range_m = 120.0;
  c.positions = {{0, 0}, {100, 0}, {0, 100}, {100, 100}};
  Network net{c};
  net.set_hooks(1, std::make_unique<attacks::DropAttack>(
                       sim::Rng{1}, 1.0, /*drop_control=*/false,
                       /*drop_data=*/true));
  net.start_all();
  net.run_for(sim::Duration::from_seconds(15.0));

  // Suspect is n9 (not on any path) so the route may legitimately pick n1
  // first; n1 silently drops; the retry must route via n2.
  LinkQuery q;
  q.suspect = NodeId{9};
  q.subject = Network::id_of(3);
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(3)},
                                    [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(20.0));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 1u);
  // Either the first path already avoided n1 (fine) or a retry recovered;
  // in both cases the verifier answered.
  EXPECT_TRUE(result->answers[0].answered);
}

TEST(Investigation, EmptyVerifierListFinalizesImmediately) {
  Network net{cluster_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(10.0));
  LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(2);
  bool done = false;
  net.investigations(0).investigate(q, {}, [&](const RoundResult& r) {
    done = true;
    EXPECT_TRUE(r.answers.empty());
  });
  EXPECT_TRUE(done);  // synchronous finalize
}

TEST(Investigation, ForwardingQueryAnswered) {
  // n0 and n2 both select n1 as MPR in a chain; ask n2 whether n1 forwards.
  Network::Config c;
  c.radio.range_m = 120.0;
  c.positions = net::chain_layout(4, 100.0);
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(40.0));

  LinkQuery q;
  q.kind = QueryKind::kForwarding;
  q.suspect = Network::id_of(2);
  q.subject = Network::id_of(0);
  q.claimed_up = true;

  std::optional<RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(1)},
                                    [&](const RoundResult& r) { result = r; });
  net.run_for(sim::Duration::from_seconds(8.0));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 1u);
  // n1 selected n2 as MPR (to reach n3) and heard its TCs forwarded.
  EXPECT_EQ(result->answers[0].evidence, +1.0);
}

}  // namespace
}  // namespace manet::core
