// Tests for the audit-event stream seam: the binary audit-log wire format
// (frame round trips and every corruption path, mirroring the checkpoint
// codec tests), and the live-vs-replay equivalence guarantee — a recorded
// run fed back through a fresh DetectionPipeline must reproduce verdicts,
// conviction rounds and trust trajectories byte for byte across seeds,
// idle-decay phases and faulted runs.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/audit_event.hpp"
#include "obs/obs.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"
#include "logging/audit_log.hpp"
#include "scenario/trust_experiment.hpp"

namespace manet {
namespace {

using net::NodeId;

using core::AuditEvent;
using core::AuditHeader;
using core::AuditStreamReader;
using logging::AuditError;
using logging::AuditFrame;
using logging::AuditReader;
using logging::AuditWriter;
using scenario::TrustExperiment;

// --- wire format ----------------------------------------------------------

core::PipelineConfig sample_config() {
  core::PipelineConfig c;
  c.self = NodeId{0};
  c.trust_update_min_detect = 0.15;
  c.liveness_window = sim::Duration::from_seconds(10.0);
  c.decay_unresponsive = true;
  return c;
}

std::vector<std::uint8_t> sample_log() {
  AuditWriter w;
  AuditHeader header;
  header.config = sample_config();
  header.trust_rows = {{NodeId{1}, 0.25}, {NodeId{2}, 0.7}};
  core::write_audit_header(w, header);

  logging::LogRecord rec;
  rec.time = sim::Time::from_ms(1500);
  rec.node = NodeId{0};
  rec.event = "hello_recv";
  rec.with("from", NodeId{2}).with("seq", std::int64_t{7});
  w.line(rec);

  core::AuditRound round;
  round.query.investigation_id = 3;
  round.query.suspect = NodeId{1};
  round.query.subject = NodeId{5};
  round.query.claimed_up = true;
  round.own_observation = -1.0;
  round.answers = {{NodeId{2}, -1.0, true}, {NodeId{3}, 0.0, false}};
  round.timeouts = 1;
  round.tags = {core::EvidenceTag::kE5AdvertisesNonNeighbor};
  core::write_round_frame(w, sim::Time::from_ms(2000), round);

  core::write_decay_frame(w, sim::Time::from_ms(3000));
  return w.take();
}

TEST(AuditWire, HeaderAndFramesRoundTrip) {
  const auto bytes = sample_log();
  AuditStreamReader stream{bytes};

  const auto& header = stream.header();
  EXPECT_EQ(header.config.self, NodeId{0});
  EXPECT_DOUBLE_EQ(header.config.trust_update_min_detect, 0.15);
  EXPECT_EQ(header.config.liveness_window.us(),
            sim::Duration::from_seconds(10.0).us());
  EXPECT_TRUE(header.config.decay_unresponsive);
  ASSERT_EQ(header.trust_rows.size(), 2u);
  EXPECT_EQ(header.trust_rows[0].first, NodeId{1});
  EXPECT_DOUBLE_EQ(header.trust_rows[0].second, 0.25);

  AuditEvent event;
  ASSERT_TRUE(stream.next(event));
  EXPECT_EQ(event.kind, AuditFrame::kLine);
  EXPECT_EQ(event.line.event, "hello_recv");
  EXPECT_EQ(event.line.node_field("from"), NodeId{2});
  EXPECT_EQ(event.line.int_field("seq"), 7);

  ASSERT_TRUE(stream.next(event));
  EXPECT_EQ(event.kind, AuditFrame::kRound);
  EXPECT_EQ(event.time.us(), sim::Time::from_ms(2000).us());
  EXPECT_EQ(event.round.query.suspect, NodeId{1});
  EXPECT_EQ(event.round.query.subject, NodeId{5});
  EXPECT_DOUBLE_EQ(event.round.own_observation, -1.0);
  ASSERT_EQ(event.round.answers.size(), 2u);
  EXPECT_EQ(event.round.answers[0].responder, NodeId{2});
  EXPECT_TRUE(event.round.answers[0].answered);
  EXPECT_FALSE(event.round.answers[1].answered);
  EXPECT_EQ(event.round.timeouts, 1u);
  ASSERT_EQ(event.round.tags.size(), 1u);
  EXPECT_EQ(event.round.tags[0], core::EvidenceTag::kE5AdvertisesNonNeighbor);

  ASSERT_TRUE(stream.next(event));
  EXPECT_EQ(event.kind, AuditFrame::kDecay);
  EXPECT_EQ(event.time.us(), sim::Time::from_ms(3000).us());

  EXPECT_FALSE(stream.next(event));  // clean end of stream
}

void expect_whole_stream_throws(const std::vector<std::uint8_t>& bytes) {
  EXPECT_THROW(
      {
        AuditStreamReader stream{bytes};
        AuditEvent event;
        while (stream.next(event)) {
        }
      },
      AuditError);
}

TEST(AuditWire, RejectsCorruptMagic) {
  auto bytes = sample_log();
  bytes[0] ^= 0xFF;
  expect_whole_stream_throws(bytes);
}

TEST(AuditWire, RejectsVersionSkew) {
  auto bytes = sample_log();
  bytes[4] += 1;  // version field, little-endian low byte
  expect_whole_stream_throws(bytes);
}

TEST(AuditWire, RejectsTruncationAtEveryLength) {
  // The format guarantees a prefix ending at a frame boundary is a valid
  // log; a prefix ending anywhere else must throw, never read past the
  // end or silently succeed mid-frame.
  const auto bytes = sample_log();
  std::vector<std::size_t> frame_boundaries;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    bool threw = false;
    std::size_t frames = 0;
    try {
      AuditStreamReader stream{prefix};
      AuditEvent event;
      while (stream.next(event)) ++frames;
    } catch (const AuditError&) {
      threw = true;
    }
    if (!threw) {
      // Only frame boundaries may parse cleanly — and then strictly fewer
      // frames than the full log holds.
      EXPECT_LT(frames, 3u) << "prefix length " << len;
      frame_boundaries.push_back(len);
    }
  }
  // Exactly the three frame boundaries after the header survive (header
  // end, after-line, after-round); everything else throws.
  EXPECT_EQ(frame_boundaries.size(), 3u);
}

TEST(AuditWire, RejectsTrailingGarbage) {
  auto bytes = sample_log();
  bytes.push_back(0x42);
  expect_whole_stream_throws(bytes);
}

TEST(AuditWire, RejectsUnknownFrameKind) {
  AuditWriter w;
  AuditHeader header;
  header.config = sample_config();
  core::write_audit_header(w, header);
  const auto header_size = w.buffer().size();
  core::write_decay_frame(w, sim::Time::from_ms(1000));
  auto log = w.take();
  log[header_size] = 0x7F;  // the frame's kind byte: not a valid AuditFrame
  expect_whole_stream_throws(log);
}

TEST(AuditWire, RejectsPayloadSizeMismatch) {
  AuditWriter w;
  AuditHeader header;
  header.config = sample_config();
  core::write_audit_header(w, header);
  auto log = w.buffer();
  const auto header_size = log.size();
  core::write_decay_frame(w, sim::Time::from_ms(1000));
  log = w.take();
  // Inflate the size prefix: the payload decoder will stop short of the
  // declared end, which end_frame must treat as corruption.
  log[header_size + 1] += 4;  // size prefix follows the kind byte
  log.insert(log.end(), 4, 0);
  expect_whole_stream_throws(log);
}

// --- kForwardAudit frame (format version 2) -------------------------------

std::vector<std::uint8_t> forward_audit_log() {
  AuditWriter w;
  AuditHeader header;
  header.config = sample_config();
  core::write_audit_header(w, header);
  // Tallies are plain u64s, not count(): values far beyond any plausible
  // payload size must survive the round trip.
  core::write_forward_audit_frame(
      w, sim::Time::from_ms(2500),
      core::ForwardAudit{NodeId{9}, (1ull << 40) + 7, 1ull << 33});
  core::write_forward_audit_frame(w, sim::Time::from_ms(3500),
                                  core::ForwardAudit{NodeId{2}, 5, 0});
  return w.take();
}

TEST(AuditWire, ForwardAuditFrameRoundTrips) {
  AuditStreamReader stream{forward_audit_log()};
  AuditEvent event;
  ASSERT_TRUE(stream.next(event));
  EXPECT_EQ(event.kind, AuditFrame::kForwardAudit);
  EXPECT_EQ(event.time.us(), sim::Time::from_ms(2500).us());
  EXPECT_EQ(event.audit.mpr, NodeId{9});
  EXPECT_EQ(event.audit.expected, (1ull << 40) + 7);
  EXPECT_EQ(event.audit.forwarded, 1ull << 33);
  ASSERT_TRUE(stream.next(event));
  EXPECT_EQ(event.kind, AuditFrame::kForwardAudit);
  EXPECT_EQ(event.audit.mpr, NodeId{2});
  EXPECT_EQ(event.audit.expected, 5u);
  EXPECT_EQ(event.audit.forwarded, 0u);
  EXPECT_FALSE(stream.next(event));
}

TEST(AuditWire, ForwardAuditReEncodesByteIdentically) {
  // Decode-then-re-encode reproduces the original bytes exactly — the
  // frame codec is a bijection, so record/replay cannot drift.
  const auto bytes = forward_audit_log();
  AuditStreamReader stream{bytes};
  AuditWriter w;
  AuditHeader header;
  header.config = sample_config();
  core::write_audit_header(w, header);
  AuditEvent event;
  while (stream.next(event)) {
    ASSERT_EQ(event.kind, AuditFrame::kForwardAudit);
    core::write_forward_audit_frame(w, event.time, event.audit);
  }
  EXPECT_EQ(w.take(), bytes);
}

TEST(AuditWire, ForwardAuditTruncationRejectedAtEveryLength) {
  const auto bytes = forward_audit_log();
  std::vector<std::size_t> frame_boundaries;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    bool threw = false;
    std::size_t frames = 0;
    try {
      AuditStreamReader stream{prefix};
      AuditEvent event;
      while (stream.next(event)) ++frames;
    } catch (const AuditError&) {
      threw = true;
    }
    if (!threw) {
      EXPECT_LT(frames, 2u) << "prefix length " << len;
      frame_boundaries.push_back(len);
    }
  }
  // Exactly the header end and the first frame's end parse cleanly;
  // every cut inside a kForwardAudit frame throws.
  EXPECT_EQ(frame_boundaries.size(), 2u);
}

TEST(AuditWire, ForwardAuditVersionSkewRejected) {
  // Version 2 introduced the frame kind; the reader's exact-version rule
  // means a v3-stamped log is rejected outright, never half-parsed.
  auto bytes = forward_audit_log();
  bytes[4] += 1;  // version field, little-endian low byte
  expect_whole_stream_throws(bytes);
}

TEST(AuditWire, ForwardAuditCarriesNoTrustUpdate) {
  // Structural replay guarantee: consuming kForwardAudit frames moves no
  // trust and emits no report — convictions flow only through kRound, so
  // record/replay verdict CSVs cannot diverge on audit traffic.
  AuditStreamReader stream{forward_audit_log()};
  auto pipeline = core::pipeline_from_header(stream.header());
  const auto before = core::trust_csv(pipeline.trust_store());
  AuditEvent event;
  while (stream.next(event)) pipeline.consume(event);
  EXPECT_EQ(core::trust_csv(pipeline.trust_store()), before);
  EXPECT_TRUE(pipeline.reports().empty());
  ASSERT_EQ(pipeline.forward_audits().size(), 2u);
  EXPECT_EQ(pipeline.forward_audits()[0].audit.mpr, NodeId{9});
}

TEST(AuditWire, PipelineFromHeaderRestoresTrustSnapshot) {
  AuditHeader header;
  header.config = sample_config();
  header.trust_rows = {{NodeId{3}, 0.42}};
  auto pipeline = core::pipeline_from_header(header);
  EXPECT_DOUBLE_EQ(pipeline.trust_store().trust(NodeId{3}), 0.42);
  EXPECT_EQ(pipeline.config().self, NodeId{0});
}

// --- live-vs-replay equivalence -------------------------------------------

struct Recorded {
  std::vector<std::uint8_t> bytes;
  std::string verdicts;
  std::string trust;
  /// counters_text("manet_pipeline_") of the live run's metrics registry —
  /// diffed verbatim against the replay's (manet_detect's --metrics
  /// equivalence surface).
  std::string pipeline_counters;
};

Recorded record_run(std::uint64_t seed, int rounds, int idle,
                    faults::FaultPlan plan = {}) {
  TrustExperiment::Config config;
  config.seed = seed;
  config.num_nodes = 16;
  config.num_liars = 4;
  config.rounds = rounds;
  config.record_audit = true;
  config.fault_plan = std::move(plan);
  obs::Context obs_ctx;
  obs::Scope obs_scope{&obs_ctx};
  TrustExperiment exp{config};
  exp.setup();
  for (int r = 0; r < rounds; ++r) {
    if (exp.faulted())
      exp.run_churn_round();
    else
      exp.run_round();
  }
  if (idle > 0) {
    exp.cease_attack();
    for (int r = 0; r < idle; ++r) exp.run_idle_round();
  }
  // Flush the log tail so the live kPipelineLines counter covers every
  // frame the recorded stream carries (manet_detect record does the same).
  exp.detector().feed_log_growth();
  return {exp.audit_log(), core::verdict_csv(exp.detector().reports()),
          core::trust_csv(exp.detector().trust_store()),
          obs_ctx.snapshot().counters_text("manet_pipeline_")};
}

struct Replayed {
  std::string verdicts;
  std::string trust;
  std::string pipeline_counters;
};

Replayed replay(const std::vector<std::uint8_t>& bytes) {
  obs::Context obs_ctx;
  obs::Scope obs_scope{&obs_ctx};
  AuditStreamReader stream{bytes};
  auto pipeline = core::pipeline_from_header(stream.header());
  AuditEvent event;
  while (stream.next(event)) pipeline.consume(event);
  return {core::verdict_csv(pipeline.reports()),
          core::trust_csv(pipeline.trust_store()),
          obs_ctx.snapshot().counters_text("manet_pipeline_")};
}

TEST(AuditReplay, FiftySeedsReplayByteIdentically) {
  // The tentpole guarantee: for every seed, feeding the recorded stream
  // into a fresh pipeline reproduces the live run's canonical CSVs byte
  // for byte — verdicts (incl. conviction rounds, intervals, tags) and the
  // final trust table with full %.17g precision.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto live = record_run(seed, /*rounds=*/3, /*idle=*/0);
    ASSERT_FALSE(live.bytes.empty()) << "seed " << seed;
    const auto [verdicts, trust, counters] = replay(live.bytes);
    ASSERT_EQ(verdicts, live.verdicts) << "seed " << seed;
    ASSERT_EQ(trust, live.trust) << "seed " << seed;
    // The metrics registry is part of the equivalence surface: both
    // producers (live simulator, recorded stream) feed the same pipeline
    // instrumentation, so the named counters must agree exactly.
    ASSERT_EQ(counters, live.pipeline_counters) << "seed " << seed;
    ASSERT_FALSE(counters.empty()) << "seed " << seed;
  }
}

TEST(AuditReplay, IdleDecayPhaseReplaysByteIdentically) {
  // Fig. 2 semantics: after cease_attack the stream carries kDecay frames;
  // the replayed forgetting sweeps must move trust exactly as live ones.
  const auto live = record_run(7, /*rounds=*/4, /*idle=*/3);
  const auto [verdicts, trust, counters] = replay(live.bytes);
  EXPECT_EQ(verdicts, live.verdicts);
  EXPECT_EQ(trust, live.trust);
  EXPECT_EQ(counters, live.pipeline_counters);
}

TEST(AuditReplay, FaultedRunsReplayByteIdentically) {
  // Under churn the liveness gate reads the stream's kLine frames; a
  // crashed suspect's suppressed convictions must suppress identically
  // offline.
  const auto plan_text =
      "20000 crash n6\n"
      "24000 brownout 0 0 120 120 0.6\n"
      "31000 brownout_clear 0 0 120 120\n"
      "35000 restart n6\n";
  for (std::uint64_t seed : {11u, 23u, 29u}) {
    const auto live = record_run(seed, /*rounds=*/4, /*idle=*/0,
                                 faults::FaultPlan::parse(plan_text));
    const auto [verdicts, trust, counters] = replay(live.bytes);
    ASSERT_EQ(verdicts, live.verdicts) << "seed " << seed;
    ASSERT_EQ(trust, live.trust) << "seed " << seed;
    ASSERT_EQ(counters, live.pipeline_counters) << "seed " << seed;
  }
}

TEST(AuditReplay, PrefixAtFrameBoundaryIsAValidLog) {
  // The format is a stream, not a document: any prefix ending at a frame
  // boundary replays cleanly (it is simply a shorter run).
  const auto live = record_run(5, /*rounds=*/2, /*idle=*/1);
  AuditStreamReader stream{live.bytes};
  auto pipeline = core::pipeline_from_header(stream.header());
  AuditEvent event;
  std::size_t frames = 0;
  while (stream.next(event)) {
    pipeline.consume(event);
    ++frames;
  }
  EXPECT_GT(frames, 0u);
  // Recording never perturbs the run: a non-recording twin matches the
  // recording one report for report.
  TrustExperiment::Config config;
  config.seed = 5;
  config.num_nodes = 16;
  config.num_liars = 4;
  config.rounds = 2;
  TrustExperiment twin{config};
  twin.setup();
  twin.run_round();
  twin.run_round();
  twin.cease_attack();
  twin.run_idle_round();
  EXPECT_EQ(core::verdict_csv(twin.detector().reports()), live.verdicts);
  EXPECT_EQ(core::trust_csv(twin.detector().trust_store()), live.trust);
}

TEST(AuditReplay, RestoreCheckpointRejectsRecordingConfig) {
  // A resumed run would record a log with no beginning; the config is
  // declared incompatible rather than silently producing a broken stream.
  TrustExperiment::Config config;
  config.seed = 3;
  config.checkpointable = true;
  TrustExperiment exp{config};
  exp.setup();
  exp.run_round();
  const auto bytes = exp.save_checkpoint();
  auto bad = config;
  bad.record_audit = true;
  EXPECT_THROW(TrustExperiment::restore_checkpoint(bad, bytes),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet
